/// \file fabric.cpp
/// FabricSpec finalization: geometry, per-block column wiring (via the
/// shared ColumnWiring machinery), the per-catchment row meshes with
/// their boundary handoffs, and the id-space bookkeeping. The inter-chip
/// links themselves are cycle behavior and live in sim/fabric_sim.cpp.
#include "topo/fabric.h"

#include <algorithm>
#include <string>

#include "common/assert.h"
#include "qos/policy.h"

namespace taqos {

const char *
linkTopologyName(LinkTopology kind)
{
    switch (kind) {
      case LinkTopology::PointToPoint: return "p2p";
      case LinkTopology::Ring: return "ring";
    }
    TAQOS_UNREACHABLE("bad link topology");
}

std::optional<LinkTopology>
parseLinkTopology(const std::string &name)
{
    if (name == "p2p" || name == "point-to-point" || name == "ptp")
        return LinkTopology::PointToPoint;
    if (name == "ring")
        return LinkTopology::Ring;
    return std::nullopt;
}

std::vector<std::vector<int>>
fabricCatchments(const ChipConfig &chip)
{
    std::vector<std::vector<int>> cats(chip.sharedColumns.size());
    for (int x = 0; x < chip.nodesX(); ++x) {
        if (chip.isSharedColumn(x))
            continue;
        for (std::size_t j = 0; j < chip.sharedColumns.size(); ++j) {
            if (chip.nearestSharedColumn(x) == chip.sharedColumns[j])
                cats[j].push_back(x);
        }
    }
    return cats;
}

namespace {

/// Slot count per block node for `spec` (terminal + largest catchment +
/// one remote slot per other chip), recomputed independently of the
/// network so the Network base class can be constructed first.
int
fabricSlots(const FabricSpec &spec)
{
    int maxCatchment = 0;
    for (const auto &cat : fabricCatchments(spec.chip))
        maxCatchment = std::max(maxCatchment, static_cast<int>(cat.size()));
    return 1 + maxCatchment + (spec.chips > 1 ? spec.chips - 1 : 0);
}

/// The fabric-global QoS parameters: total flow count, and the frame
/// scaled to the block count so per-flow quotas keep the single-column
/// magnitude.
PvcParams
fabricPvc(const FabricSpec &spec)
{
    PvcParams pvc = spec.column.pvc;
    pvc.numFlows =
        spec.blocks() * spec.chip.nodesY() * fabricSlots(spec);
    if (spec.scaleFrameLen && spec.blocks() > 1) {
        pvc.frameLen *= static_cast<Cycle>(spec.blocks());
        pvc.gsfFrameLen *= static_cast<Cycle>(spec.blocks());
    }
    return pvc;
}

} // namespace

FabricNetwork::FabricNetwork(FabricSpec spec)
    : Network(spec.column.mode, fabricPvc(spec)), spec_(std::move(spec))
{
    const ChipConfig &chip = spec_.chip;
    const int B = blocksPerChip();

    catchments_.resize(static_cast<std::size_t>(B));
    for (int x = 0; x < chip.nodesX(); ++x) {
        if (chip.isSharedColumn(x))
            continue;
        computeXs_.push_back(x);
        blockOfX_.push_back(-1);
        for (int j = 0; j < B; ++j) {
            if (chip.nearestSharedColumn(x) == chip.sharedColumns[
                    static_cast<std::size_t>(j)]) {
                catchments_[static_cast<std::size_t>(j)].push_back(x);
                blockOfX_.back() = j;
            }
        }
    }
    for (const auto &cat : catchments_) {
        maxCatchment_ =
            std::max(maxCatchment_, static_cast<int>(cat.size()));
    }
    slotsPerNode_ = 1 + maxCatchment_ + remoteSlots();

    // Per-block column configurations: the spec's template with the
    // block's own QoS mode and the crossbar grouping implied by its
    // catchment split (slots west of the column share one port).
    blockCfgs_.reserve(static_cast<std::size_t>(blocks()));
    for (int g = 0; g < blocks(); ++g) {
        const int j = g % B;
        ColumnConfig cfg = spec_.column;
        cfg.numNodes = gridHeight();
        cfg.injectorsPerNode = slotsPerNode_;
        cfg.mode = blockMode(g);
        cfg.pvc = pvcParams();
        int east = 0;
        for (int x : catchment(j)) {
            if (x < chip.sharedColumns[static_cast<std::size_t>(j)])
                ++east;
        }
        cfg.eastRowInjectors = east;
        blockCfgs_.push_back(std::move(cfg));
    }
}

int
FabricNetwork::blockOfX(int x) const
{
    for (std::size_t r = 0; r < computeXs_.size(); ++r) {
        if (computeXs_[r] == x)
            return blockOfX_[r];
    }
    TAQOS_ASSERT(false, "grid column %d is not a compute column", x);
    return -1;
}

QosMode
FabricNetwork::blockMode(int g) const
{
    if (spec_.columnModes.empty())
        return spec_.column.mode;
    return spec_.columnModes[static_cast<std::size_t>(g) %
                             spec_.columnModes.size()];
}

int
FabricNetwork::blockOfNode(NodeId n) const
{
    TAQOS_ASSERT(isBlockNode(n), "node %d is not a block node", n);
    return chipOfNode(n) * blocksPerChip() +
           n % nodesPerChip() / gridHeight();
}

NodeId
FabricNetwork::computeNodeId(int chip, int x, int y) const
{
    int rank = -1;
    for (std::size_t r = 0; r < computeXs_.size(); ++r) {
        if (computeXs_[r] == x)
            rank = static_cast<int>(r);
    }
    TAQOS_ASSERT(rank >= 0, "grid column %d is not a compute column", x);
    return chip * nodesPerChip() + blocksPerChip() * gridHeight() +
           y * computePerRow() + rank;
}

bool
FabricNetwork::slotUsable(int j, int k) const
{
    if (k == 0)
        return true;
    if (k <= maxCatchment_) {
        return k - 1 <
               static_cast<int>(catchment(j).size());
    }
    return k < slotsPerNode_;
}

InjectorQueue &
FabricNetwork::sourceQueue(FlowId f)
{
    if (slotOfFlow(f) == 0)
        return injector(f); // terminal flows originate at the block node
    InjectorQueue &q = rowQueues_[static_cast<std::size_t>(f)];
    TAQOS_ASSERT(q.flow == f, "flow %d has no origin queue", f);
    return q;
}

std::unique_ptr<FabricNetwork>
FabricNetwork::build(FabricSpec spec)
{
    TAQOS_ASSERT(spec.chips >= 1, "fabric needs at least one chip");
    TAQOS_ASSERT(!spec.chip.sharedColumns.empty(),
                 "fabric needs at least one shared column");
    std::sort(spec.chip.sharedColumns.begin(),
              spec.chip.sharedColumns.end());
    for (std::size_t i = 0; i < spec.chip.sharedColumns.size(); ++i) {
        const int col = spec.chip.sharedColumns[i];
        TAQOS_ASSERT(col >= 0 && col < spec.chip.nodesX(),
                     "shared column %d outside the grid", col);
        TAQOS_ASSERT(i == 0 || col > spec.chip.sharedColumns[i - 1],
                     "duplicate shared column %d", col);
    }
    TAQOS_ASSERT(spec.chip.nodesX() >
                     static_cast<int>(spec.chip.sharedColumns.size()),
                 "fabric needs at least one compute column");
    TAQOS_ASSERT(spec.chip.nodesY() >= 2,
                 "columns need at least two nodes");
    TAQOS_ASSERT(spec.rowVcs >= 1, "row links need at least one VC");
    TAQOS_ASSERT(spec.linkDelay >= 1 && spec.linkWidthFlits >= 1,
                 "inter-chip links need positive delay and width");
    spec.column.numNodes = spec.chip.nodesY();

    std::unique_ptr<FabricNetwork> net(new FabricNetwork(std::move(spec)));
    TAQOS_ASSERT(net->pvcParams().weights.empty() ||
                     static_cast<int>(net->pvcParams().weights.size()) ==
                         net->totalFlows(),
                 "fabric weights must cover all %d flows",
                 net->totalFlows());
    for (int g = 0; g < net->blocks(); ++g) {
        const QosMode m = net->blockMode(g);
        TAQOS_ASSERT(m == net->mode() ||
                         (m != QosMode::Pvc && m != QosMode::Gsf),
                     "block %d: Pvc/Gsf need the engine-global "
                     "quota/gate machinery and must match the fabric "
                     "mode",
                     g);
    }
    buildFabric(*net);
    net->finalizeRouters();
    return net;
}

void
buildFabric(FabricNetwork &net)
{
    const FabricSpec &spec = net.spec();
    const ChipConfig &chip = spec.chip;
    const int B = net.blocksPerChip();
    const int H = net.gridHeight();
    const int slots = net.slotsPerNode();
    const int fpb = net.flowsPerBlock();
    const int vcs = spec.rowVcs;
    /// Row routers are 2-stage (VA, XT) like the mesh/DPS column routers.
    const int depth = 2;

    // Pre-size the flow-indexed stores before any block takes pointers
    // into them (ports keep InjectorQueue pointers; growth would dangle).
    net.injectors().resize(static_cast<std::size_t>(net.totalFlows()));
    net.rowQueues_.resize(static_cast<std::size_t>(net.totalFlows()));

    const auto wiring = [&](int c, int j) {
        const int g = c * B + j;
        const QosMode m = net.blockMode(g);
        // Router/port QoS flags follow the *block's* policy, not the
        // fabric's (a per-flow block grows VCs on demand even inside a
        // PVC fabric).
        const auto proto = makeQosPolicy(m, net.pvcParams());
        return ColumnWiring{net,
                            net.blockCfg(g),
                            net.blockBase(g),
                            g * fpb,
                            "c" + std::to_string(c) + "_b" +
                                std::to_string(j) + "_",
                            m,
                            proto->usesReservedVc() ? 0 : -1,
                            proto->unboundedVcs()};
    };

    for (int c = 0; c < spec.chips; ++c) {
        // Block routers and terminals first — ascending node order is a
        // substrate invariant (termPort(n) indexes per-node storage).
        for (int j = 0; j < B; ++j)
            wireColumnInjection(wiring(c, j));

        // Compute-node routers, their aggregate injector queues (the
        // node's catchment flow plus any remote flows it originates),
        // and empty terminal buffers for uniform per-node indexing.
        for (int y = 0; y < H; ++y) {
            for (int r = 0; r < net.computePerRow(); ++r) {
                const int x = net.xOfRank(r);
                const NodeId id = net.computeNodeId(c, x, y);
                TAQOS_ASSERT(id == net.numNodes(),
                             "compute node id mismatch");
                Router *router = net.addRouter(id, QosMode::NoQos);
                net.addTermPort(id, 1);

                auto port = std::make_unique<InputPort>();
                port->name = "c" + std::to_string(c) + "_row_inj_" +
                             std::to_string(x) + "_" + std::to_string(y);
                port->node = id;
                port->kind = InputPort::Kind::Injection;
                port->pipelineDelay = depth;
                port->group = router->addXbarGroup();

                const auto addOrigin = [&](FlowId f) {
                    InjectorQueue &q =
                        net.rowQueues_[static_cast<std::size_t>(f)];
                    q.flow = f;
                    q.node = id;
                    q.windowLimit = spec.column.pvc.windowLimit;
                    port->injectors.push_back(&q);
                };

                const int j = net.blockOfX(x);
                const auto &cat = net.catchment(j);
                const int idx = static_cast<int>(
                    std::find(cat.begin(), cat.end(), x) - cat.begin());
                addOrigin((c * B + j) * fpb + y * slots + 1 + idx);

                // The westernmost catchment node also originates this
                // (block, row)'s traffic toward every remote chip.
                if (idx == 0) {
                    for (int cd = 0; cd < spec.chips; ++cd) {
                        if (cd == c)
                            continue;
                        const int k = 1 + net.maxCatchment_ +
                                      (c - cd - 1 + spec.chips) %
                                          spec.chips;
                        addOrigin((cd * B + j) * fpb + y * slots + k);
                    }
                }
                router->addInputPort(std::move(port));
            }
        }

        for (int j = 0; j < B; ++j)
            wireColumnTopology(wiring(c, j));

        // Row meshes: each catchment side chains toward its block's
        // column-entry node, ending in a boundary handoff buffer
        // (buildChipRows generalized to one segment per block side).
        const auto makeRowInput = [&](Router *router,
                                      const std::string &name,
                                      NodeId node) {
            auto port = std::make_unique<InputPort>();
            port->name = name;
            port->node = node;
            port->kind = InputPort::Kind::Network;
            port->pipelineDelay = depth;
            port->creditDelay = 1;
            port->reservedVc = -1; // rows run without QOS machinery
            port->group = router->addXbarGroup();
            port->vcs.resize(static_cast<std::size_t>(vcs));
            return router->addInputPort(std::move(port));
        };
        const auto makeHandoff = [&](const std::string &name, int j,
                                     int y) {
            auto port = std::make_unique<InputPort>();
            port->name = name;
            port->node = net.blockNodeId(c, j, y);
            port->kind = InputPort::Kind::Network;
            port->creditDelay = 1;
            port->reservedVc = -1;
            port->vcs.resize(static_cast<std::size_t>(vcs));
            net.handoff_.push_back(std::move(port));
            net.auxPorts_.push_back(net.handoff_.back().get());
            return net.handoff_.back().get();
        };
        const auto addRowOutput = [&](int x, int y, int j,
                                      const char *dir, InputPort *down) {
            Router *router = net.router(net.computeNodeId(c, x, y));
            auto out = std::make_unique<OutputPort>();
            out->name = "c" + std::to_string(c) + "_row_out_" + dir +
                        "_" + std::to_string(x) + "_" + std::to_string(y);
            out->node = net.computeNodeId(c, x, y);
            out->tableIdx = Network::nextTableIdx(router);
            out->drops.push_back(OutputPort::Drop{down, /*wireDelay=*/1,
                                                  /*meshHops=*/1.0});
            const int idx = static_cast<int>(router->outputs().size());
            router->addOutputPort(std::move(out));
            // Everything in a catchment row heads for its block's
            // column-entry node.
            router->setRoute(net.blockNodeId(c, j, y), RouteEntry{idx, 1, 0});
        };

        for (int j = 0; j < B; ++j) {
            const int cx =
                chip.sharedColumns[static_cast<std::size_t>(j)];
            const auto &cat = net.catchment(j);
            std::vector<int> west, east;
            for (int x : cat)
                (x < cx ? west : east).push_back(x);

            for (int y = 0; y < H; ++y) {
                const std::string suffix =
                    "b" + std::to_string(j) + "_" + std::to_string(y);
                if (!west.empty()) {
                    std::vector<InputPort *> in(west.size(), nullptr);
                    for (std::size_t i = 1; i < west.size(); ++i) {
                        in[i] = makeRowInput(
                            net.router(net.computeNodeId(c, west[i], y)),
                            "c" + std::to_string(c) + "_row_in_e_" +
                                std::to_string(west[i]) + "_" +
                                std::to_string(y),
                            net.computeNodeId(c, west[i], y));
                    }
                    InputPort *hand = makeHandoff(
                        "c" + std::to_string(c) + "_handoff_w_" + suffix,
                        j, y);
                    for (std::size_t i = 0; i < west.size(); ++i) {
                        addRowOutput(west[i], y, j, "e",
                                     i + 1 == west.size() ? hand
                                                          : in[i + 1]);
                    }
                }
                if (!east.empty()) {
                    std::vector<InputPort *> in(east.size(), nullptr);
                    for (std::size_t i = 0; i + 1 < east.size(); ++i) {
                        in[i] = makeRowInput(
                            net.router(net.computeNodeId(c, east[i], y)),
                            "c" + std::to_string(c) + "_row_in_w_" +
                                std::to_string(east[i]) + "_" +
                                std::to_string(y),
                            net.computeNodeId(c, east[i], y));
                    }
                    InputPort *hand = makeHandoff(
                        "c" + std::to_string(c) + "_handoff_e_" + suffix,
                        j, y);
                    for (std::size_t i = east.size(); i-- > 0;) {
                        addRowOutput(east[i], y, j, "w",
                                     i == 0 ? hand : in[i - 1]);
                    }
                }
            }
        }
    }
}

} // namespace taqos
