/// \file build_mecs.cpp
/// Wiring for the MECS column: each node drives one point-to-multipoint
/// express channel per direction with a drop at every downstream node, so
/// any node reaches any other in a single network hop. Receivers keep one
/// buffered input port per upstream node; all inputs from the same
/// direction share a single crossbar port through an input arbiter
/// (Figure 2(a)'s asymmetric router).
#include <string>
#include <vector>

#include "topo/column_network.h"

namespace taqos {

void
buildMecsColumn(const ColumnWiring &w)
{
    const ColumnConfig &cfg = w.cfg;
    const int n = cfg.numNodes;
    const int vcs = cfg.effectiveVcs();
    const int depth = pipelineDepth(cfg.topology);

    // inFrom[j][s]: input port at node j fed by node s's express channel.
    std::vector<std::vector<InputPort *>> inFrom(
        static_cast<std::size_t>(n),
        std::vector<InputPort *>(static_cast<std::size_t>(n), nullptr));

    for (int j = 0; j < n; ++j) {
        Router *r = w.router(j);
        XbarGroup *northGroup = j > 0 ? r->addXbarGroup() : nullptr;
        XbarGroup *southGroup = j < n - 1 ? r->addXbarGroup() : nullptr;
        for (int s = 0; s < n; ++s) {
            if (s == j)
                continue;
            const int span = s < j ? j - s : s - j;
            // Credits ride back over the span; VC provisioning (14) covers
            // the worst-case round trip (Table 1).
            inFrom[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
                w.makeNetInput(r,
                               "mecs_in_" + std::to_string(j) + "_from_" +
                                   std::to_string(s),
                               j, vcs, /*creditDelay=*/span, depth,
                               /*passThrough=*/false,
                               s < j ? northGroup : southGroup);
        }
    }

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);

        if (i > 0) {
            auto out = std::make_unique<OutputPort>();
            out->name = w.name("mecs_out_n_" + std::to_string(i));
            out->node = w.node(i);
            out->tableIdx = Network::nextTableIdx(r);
            // Drops ordered by distance: dropIdx = span - 1.
            for (int j = i - 1; j >= 0; --j) {
                out->drops.push_back(OutputPort::Drop{
                    inFrom[static_cast<std::size_t>(j)]
                          [static_cast<std::size_t>(i)],
                    /*wireDelay=*/i - j,
                    /*meshHops=*/static_cast<double>(i - j)});
            }
            const int idx = static_cast<int>(r->outputs().size());
            r->addOutputPort(std::move(out));
            for (int d = 0; d < i; ++d)
                w.setRoute(r, d, RouteEntry{idx, 1, i - d - 1});
        }

        if (i < n - 1) {
            auto out = std::make_unique<OutputPort>();
            out->name = w.name("mecs_out_s_" + std::to_string(i));
            out->node = w.node(i);
            out->tableIdx = Network::nextTableIdx(r);
            for (int j = i + 1; j < n; ++j) {
                out->drops.push_back(OutputPort::Drop{
                    inFrom[static_cast<std::size_t>(j)]
                          [static_cast<std::size_t>(i)],
                    /*wireDelay=*/j - i,
                    /*meshHops=*/static_cast<double>(j - i)});
            }
            const int idx = static_cast<int>(r->outputs().size());
            r->addOutputPort(std::move(out));
            for (int d = i + 1; d < n; ++d)
                w.setRoute(r, d, RouteEntry{idx, 1, d - i - 1});
        }

        w.addTerminalOutput(i);
    }
}

} // namespace taqos
