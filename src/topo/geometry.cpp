#include "topo/geometry.h"

#include <cmath>

#include "common/assert.h"

namespace taqos {
namespace {

constexpr int kFlitBits = 128; // 16-byte links (Table 1)

void
addCommonParts(RouterGeometry &geom, const ColumnConfig &cfg,
               const GeometryOptions &opt)
{
    geom.flitBits = kFlitBits;
    geom.rowBuffers.push_back(
        BufferGroup{opt.rowPorts, opt.rowVcsPerPort, cfg.flitsPerVc});
    // Terminal injection staging (1 injection VC) + ejection VCs.
    geom.rowBuffers.push_back(BufferGroup{1, 1, cfg.flitsPerVc});
    geom.rowBuffers.push_back(BufferGroup{1, cfg.ejectionVcs, cfg.flitsPerVc});
}

int
columnVcs(TopologyKind kind, const ColumnConfig &cfg,
          const GeometryOptions &opt)
{
    const int vcs = cfg.vcsPerPort > 0 ? cfg.vcsPerPort
                                       : defaultVcsPerPort(kind);
    // Without QOS there is no reserved rate-compliant VC.
    return opt.qosEnabled ? vcs : vcs - 1;
}

void
setFlowState(RouterGeometry &geom, const ColumnConfig &cfg,
             const GeometryOptions &opt, int numOutputs)
{
    if (!opt.qosEnabled)
        return;
    geom.flowTableFlows = cfg.numFlows();
    geom.flowTableOutputs = numOutputs;
    geom.flowCounterBits = 24;
}

/// Feed-line length from stacked VC arrays to a shared crossbar port.
double
inputFeedUm(int ports, int vcs, int flitsPerVc)
{
    const TechParams tech = tech32nm();
    const double arrayAreaUm2 = static_cast<double>(vcs) * flitsPerVc *
                                kFlitBits * tech.bufferBitAreaUm2;
    return 0.5 * static_cast<double>(ports) * std::sqrt(arrayAreaUm2);
}

} // namespace

RouterGeometry
columnRouterGeometry(TopologyKind kind, const ColumnConfig &cfg, NodeId node,
                     const GeometryOptions &opt)
{
    TAQOS_ASSERT(node >= 0 && node < cfg.numNodes, "node %d out of range",
                 node);
    const int n = cfg.numNodes;
    const int vcs = columnVcs(kind, cfg, opt);
    const bool interior = node > 0 && node < n - 1;

    RouterGeometry geom;
    geom.name = topologyName(kind);
    addCommonParts(geom, cfg, opt);

    switch (kind) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4: {
        const int rep = replicationOf(kind);
        const int colInputs = rep * (interior ? 2 : 1);
        geom.columnBuffers.push_back(
            BufferGroup{colInputs, vcs, cfg.flitsPerVc});
        // Inputs: column + terminal + 2 shared row ports.
        // Outputs: column + terminal + east/west row outputs.
        geom.xbarInputs = colInputs + 3;
        geom.xbarOutputs = colInputs + 3;
        setFlowState(geom, cfg, opt, geom.xbarOutputs);
        break;
      }
      case TopologyKind::Mecs: {
        const int colInputs = n - 1; // one port per other node
        geom.columnBuffers.push_back(
            BufferGroup{colInputs, vcs, cfg.flitsPerVc});
        // Asymmetric router: all same-direction inputs share one switch
        // port; two network outputs (one per direction).
        geom.xbarInputs = 5;  // north group, south group, term, rowE, rowW
        geom.xbarOutputs = 5; // north, south, term, east, west
        geom.xbarInputFeedUm = inputFeedUm(colInputs, vcs, cfg.flitsPerVc);
        setFlowState(geom, cfg, opt, geom.xbarOutputs);
        break;
      }
      case TopologyKind::FlatButterfly: {
        const int colInputs = n - 1; // dedicated channel per other node
        geom.columnBuffers.push_back(
            BufferGroup{colInputs, vcs, cfg.flitsPerVc});
        // Every channel gets its own switch port: 7 network inputs +
        // terminal + 2 row ports in; 7 network + terminal + 2 row out.
        geom.xbarInputs = colInputs + 3;
        geom.xbarOutputs = colInputs + 3;
        setFlowState(geom, cfg, opt, geom.xbarOutputs);
        break;
      }
      case TopologyKind::Dps: {
        int passPorts = 0;
        for (NodeId d = 0; d < n; ++d) {
            if (d == node)
                continue;
            if ((node < d && node > 0) || (node > d && node < n - 1))
                ++passPorts;
        }
        const int destPorts = (node > 0 ? 1 : 0) + (node < n - 1 ? 1 : 0);
        geom.columnBuffers.push_back(
            BufferGroup{passPorts, vcs, cfg.flitsPerVc});
        geom.columnBuffers.push_back(
            BufferGroup{destPorts, vcs, cfg.flitsPerVc});
        // Source crossbar: injection + terminating subnet inputs in;
        // one output per subnet + terminal + east/west row outputs out.
        // Pass-through traffic bypasses the crossbar (2:1 muxes).
        geom.xbarInputs = 3 + destPorts;
        geom.xbarOutputs = (n - 1) + 3;
        setFlowState(geom, cfg, opt, geom.xbarOutputs);
        break;
      }
    }
    return geom;
}

RouterGeometry
representativeGeometry(TopologyKind kind, const ColumnConfig &cfg,
                       const GeometryOptions &opt)
{
    return columnRouterGeometry(kind, cfg, cfg.numNodes / 2, opt);
}

} // namespace taqos
