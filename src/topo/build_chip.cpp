/// \file build_chip.cpp
/// Wiring for the whole-chip fabric: the shared column is built by the
/// regular ColumnNetwork machinery (bit-identical structure), then each
/// grid row gets a 1-D NoQos mesh of compute-node routers that forwards
/// row traffic into a handoff buffer at the column boundary. The handoff
/// re-enters the column through the per-flow row-injector queues, so the
/// column's QOS view of its sources is exactly the paper's.
#include <string>
#include <vector>

#include "common/assert.h"
#include "topo/chip_network.h"

namespace taqos {

ChipNetwork::ChipNetwork(ChipNetConfig cfg)
    : ColumnNetwork(cfg.column), chipCfg_(std::move(cfg))
{
}

NodeId
ChipNetwork::nodeIdAt(int x, int y) const
{
    const int c = chipCfg_.columnX();
    if (x == c)
        return columnNodeId(y);
    const int rank = x < c ? x : x - 1;
    const int computePerRow = chipCfg_.chip.nodesX() - 1;
    return chipCfg_.chip.nodesY() + y * computePerRow + rank;
}

int
ChipNetwork::injectorIndexOf(int x) const
{
    TAQOS_ASSERT(x != chipCfg_.columnX(),
                 "column node has no row-injector index");
    return chipCfg_.injectorIndexOf(x);
}

int
ChipNetwork::computeXOf(int k) const
{
    TAQOS_ASSERT(k >= 1 && k < cfg_.injectorsPerNode,
                 "row-injector index %d out of range", k);
    return chipCfg_.computeXOf(k);
}

InjectorQueue &
ChipNetwork::sourceQueue(FlowId f)
{
    if (f % cfg_.injectorsPerNode == 0)
        return injector(f); // terminal flows originate at the column node
    return rowQueues_[static_cast<std::size_t>(f)];
}

std::unique_ptr<ChipNetwork>
ChipNetwork::build(ChipNetConfig cfg)
{
    cfg.column.numNodes = cfg.chip.nodesY();
    cfg.column.canonicalize();
    TAQOS_ASSERT(cfg.chip.isSharedColumn(cfg.columnX()),
                 "grid column %d is not a shared column", cfg.columnX());
    TAQOS_ASSERT(cfg.column.numNodes >= 2, "column needs at least two nodes");
    TAQOS_ASSERT(cfg.column.injectorsPerNode == cfg.chip.nodesX(),
                 "the row-injector/compute-node mapping requires "
                 "injectorsPerNode (%d) == nodesX (%d)",
                 cfg.column.injectorsPerNode, cfg.chip.nodesX());
    TAQOS_ASSERT(cfg.rowVcs >= 1, "row links need at least one VC");

    std::unique_ptr<ChipNetwork> net(new ChipNetwork(std::move(cfg)));
    net->wireColumn();
    buildChipRows(*net);
    net->finalizeRouters();
    return net;
}

void
buildChipRows(ChipNetwork &net)
{
    const ChipNetConfig &cc = net.chipCfg();
    const ColumnConfig &col = net.cfg();
    const int W = cc.chip.nodesX();
    const int H = cc.chip.nodesY();
    const int c = cc.columnX();
    const int vcs = cc.rowVcs;
    /// Row routers are 2-stage (VA, XT) like the mesh/DPS column routers.
    const int depth = 2;

    net.rowQueues_.resize(static_cast<std::size_t>(col.numFlows()));

    // Compute-node routers, their aggregate injector queues, and empty
    // terminal buffers (so per-node indexing stays uniform for the
    // engine). Creation order must match nodeIdAt.
    for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
            if (x == c)
                continue;
            const NodeId id = net.nodeIdAt(x, y);
            TAQOS_ASSERT(id == net.numNodes(), "compute node id mismatch");
            Router *r = net.addRouter(id, QosMode::NoQos);
            net.addTermPort(id, 1);

            const FlowId f = col.flowOf(y, net.injectorIndexOf(x));
            InjectorQueue &q =
                net.rowQueues_[static_cast<std::size_t>(f)];
            q.flow = f;
            q.node = id;
            q.windowLimit = col.pvc.windowLimit;

            auto port = std::make_unique<InputPort>();
            port->name = "row_inj_" + std::to_string(x) + "_" +
                         std::to_string(y);
            port->node = id;
            port->kind = InputPort::Kind::Injection;
            port->pipelineDelay = depth;
            port->group = r->addXbarGroup();
            port->injectors.push_back(&q);
            r->addInputPort(std::move(port));
        }
    }

    const auto makeRowInput = [&](Router *r, const std::string &name,
                                  NodeId node) {
        auto port = std::make_unique<InputPort>();
        port->name = name;
        port->node = node;
        port->kind = InputPort::Kind::Network;
        port->pipelineDelay = depth;
        port->creditDelay = 1;
        port->reservedVc = -1; // rows run without QOS machinery
        port->group = r->addXbarGroup();
        port->vcs.resize(static_cast<std::size_t>(vcs));
        return r->addInputPort(std::move(port));
    };
    const auto makeHandoff = [&](const std::string &name, int y) {
        auto port = std::make_unique<InputPort>();
        port->name = name;
        port->node = net.columnNodeId(y);
        port->kind = InputPort::Kind::Network;
        port->creditDelay = 1;
        port->reservedVc = -1;
        port->vcs.resize(static_cast<std::size_t>(vcs));
        net.handoff_.push_back(std::move(port));
        net.auxPorts_.push_back(net.handoff_.back().get());
        return net.handoff_.back().get();
    };
    const auto addRowOutput = [&](int x, int y, const char *dir,
                                  InputPort *down) {
        Router *r = net.router(net.nodeIdAt(x, y));
        auto out = std::make_unique<OutputPort>();
        out->name = std::string("row_out_") + dir + "_" +
                    std::to_string(x) + "_" + std::to_string(y);
        out->node = net.nodeIdAt(x, y);
        out->tableIdx = Network::nextTableIdx(r);
        out->drops.push_back(OutputPort::Drop{down, /*wireDelay=*/1,
                                              /*meshHops=*/1.0});
        const int idx = static_cast<int>(r->outputs().size());
        r->addOutputPort(std::move(out));
        // Everything in a row heads for the row's column-entry node.
        r->setRoute(net.columnNodeId(y), RouteEntry{idx, 1, 0});
    };

    for (int y = 0; y < H; ++y) {
        // West of the column: compute nodes 0..c-1 forward east.
        if (c > 0) {
            std::vector<InputPort *> in(static_cast<std::size_t>(c),
                                        nullptr);
            for (int x = 1; x < c; ++x) {
                in[static_cast<std::size_t>(x)] = makeRowInput(
                    net.router(net.nodeIdAt(x, y)),
                    "row_in_e_" + std::to_string(x) + "_" +
                        std::to_string(y),
                    net.nodeIdAt(x, y));
            }
            InputPort *hand =
                makeHandoff("handoff_w_" + std::to_string(y), y);
            for (int x = 0; x < c; ++x) {
                addRowOutput(x, y, "e",
                             x == c - 1
                                 ? hand
                                 : in[static_cast<std::size_t>(x + 1)]);
            }
        }
        // East of the column: compute nodes c+1..W-1 forward west.
        if (c < W - 1) {
            std::vector<InputPort *> in(static_cast<std::size_t>(W),
                                        nullptr);
            for (int x = c + 1; x < W - 1; ++x) {
                in[static_cast<std::size_t>(x)] = makeRowInput(
                    net.router(net.nodeIdAt(x, y)),
                    "row_in_w_" + std::to_string(x) + "_" +
                        std::to_string(y),
                    net.nodeIdAt(x, y));
            }
            InputPort *hand =
                makeHandoff("handoff_e_" + std::to_string(y), y);
            for (int x = W - 1; x > c; --x) {
                addRowOutput(x, y, "w",
                             x == c + 1
                                 ? hand
                                 : in[static_cast<std::size_t>(x - 1)]);
            }
        }
    }
}

} // namespace taqos
