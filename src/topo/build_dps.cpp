/// \file build_dps.cpp
/// Wiring for Destination Partitioned Subnets: one dedicated lightweight
/// subnetwork per destination node. A subnet for destination d is a pair
/// of linear chains converging on d. Intermediate hops are a 2:1 mux
/// between the pass-through VCs and locally injected traffic — no crossbar,
/// no flow-state query (packets arbitrate with their source-computed PVC
/// priority), single-cycle traversal. Source and destination routers are
/// mesh-like; the source crossbar has one output per subnet.
#include <string>
#include <vector>

#include "topo/column_network.h"

namespace taqos {

void
buildDpsColumn(const ColumnWiring &w)
{
    const ColumnConfig &cfg = w.cfg;
    const int n = cfg.numNodes;
    const int vcs = cfg.effectiveVcs();
    const int depth = pipelineDepth(cfg.topology); // source/dest pipeline

    const auto at = [n](int i, int d) {
        return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(d);
    };

    // pass[i*n+d]: pass-through input at node i on subnet d (fed by the
    // neighbour farther from d). destIn[d] north/south: terminating inputs.
    std::vector<InputPort *> pass(static_cast<std::size_t>(n) *
                                      static_cast<std::size_t>(n),
                                  nullptr);
    std::vector<InputPort *> destInNorth(static_cast<std::size_t>(n), nullptr);
    std::vector<InputPort *> destInSouth(static_cast<std::size_t>(n), nullptr);

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);

        // Terminating inputs of this node's own subnet (dest side is
        // mesh-like: buffered VCs, full pipeline, own crossbar port).
        if (i > 0) {
            destInNorth[static_cast<std::size_t>(i)] = w.makeNetInput(
                r, "dps_in_" + std::to_string(i) + "_n", i, vcs,
                /*creditDelay=*/1, depth, /*passThrough=*/false,
                r->addXbarGroup());
        }
        if (i < n - 1) {
            destInSouth[static_cast<std::size_t>(i)] = w.makeNetInput(
                r, "dps_in_" + std::to_string(i) + "_s", i, vcs,
                /*creditDelay=*/1, depth, /*passThrough=*/false,
                r->addXbarGroup());
        }

        // Pass-through inputs for subnets flowing through this node.
        for (int d = 0; d < n; ++d) {
            if (d == i)
                continue;
            const bool onNorthChain = i < d && i > 0;     // fed from i-1
            const bool onSouthChain = i > d && i < n - 1; // fed from i+1
            if (!onNorthChain && !onSouthChain)
                continue;
            pass[at(i, d)] = w.makeNetInput(
                r,
                "dps_pass_" + std::to_string(d) + "_at_" + std::to_string(i),
                i, vcs, /*creditDelay=*/1, /*pipeDelay=*/1,
                /*passThrough=*/true, /*group=*/nullptr);
        }
    }

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);
        for (int d = 0; d < n; ++d) {
            if (d == i)
                continue;
            const int next = d > i ? i + 1 : i - 1;
            InputPort *target;
            if (next == d) {
                target = d > i ? destInNorth[static_cast<std::size_t>(d)]
                               : destInSouth[static_cast<std::size_t>(d)];
            } else {
                target = pass[at(next, d)];
            }
            auto out = std::make_unique<OutputPort>();
            out->name = w.name("dps_out_" + std::to_string(d) + "_at_" +
                               std::to_string(i));
            out->node = w.node(i);
            // DPS keeps a separate table per subnet output — the state
            // scale-up Sec. 3.2 calls out.
            out->tableIdx = Network::nextTableIdx(r);
            out->drops.push_back(
                OutputPort::Drop{target, /*wireDelay=*/1, /*meshHops=*/1.0});
            const int idx = static_cast<int>(r->outputs().size());
            r->addOutputPort(std::move(out));
            w.setRoute(r, d, RouteEntry{idx, 1, 0});
        }
        w.addTerminalOutput(i);
    }
}

} // namespace taqos
