/// \file topology.h
/// The five shared-region interconnect configurations evaluated by the
/// paper (Table 1), and the column configuration record.
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "qos/pvc.h"

namespace taqos {

enum class TopologyKind {
    MeshX1, ///< baseline 1-D mesh
    MeshX2, ///< 2-way replicated channels, single crossbar
    MeshX4, ///< 4-way replicated channels (MECS/DPS-equal bisection)
    Mecs,   ///< point-to-multipoint express channels, asymmetric router
    Dps,    ///< Destination Partitioned Subnets (this paper's proposal)
    /// Extension: flattened butterfly (Kim et al.), which Sec. 2.2 notes
    /// as an alternative richly connected choice — dedicated
    /// point-to-point channels between every node pair, so each input
    /// port keeps its own crossbar port (higher switch radix than MECS).
    FlatButterfly,
};

/// The five configurations the paper evaluates (Table 1). The flattened
/// butterfly extension is benchmarked separately (bench/ablation_fbfly).
inline constexpr TopologyKind kAllTopologies[] = {
    TopologyKind::MeshX1, TopologyKind::MeshX2, TopologyKind::MeshX4,
    TopologyKind::Mecs, TopologyKind::Dps,
};

const char *topologyName(TopologyKind kind);
std::optional<TopologyKind> parseTopology(const std::string &name);

/// Channel replication degree (mesh xN); 1 for MECS/DPS.
int replicationOf(TopologyKind kind);

/// Table 1: VCs per network port (round-trip-credit provisioning).
int defaultVcsPerPort(TopologyKind kind);

/// Table 1: router pipeline depth (mesh/DPS 2: VA, XT; MECS 3: VA-local,
/// VA-global, XT).
int pipelineDepth(TopologyKind kind);

/// Configuration of one QOS-protected shared column.
struct ColumnConfig {
    TopologyKind topology = TopologyKind::Dps;
    QosMode mode = QosMode::Pvc;

    /// Nodes in the column (the paper's 8x8 grid has 8 per column).
    int numNodes = 8;

    /// Traffic sources per node: 1 terminal + 7 row inputs (4 east MECS
    /// row channels sharing one crossbar port, 3 west).
    int injectorsPerNode = 8;
    int eastRowInjectors = 4;

    /// Flit capacity of each VC (covers the largest packet — VCT).
    int flitsPerVc = 4;

    /// VCs per network port; 0 selects the Table 1 default per topology.
    int vcsPerPort = 0;

    /// Ejection VCs at each terminal.
    int ejectionVcs = 2;

    PvcParams pvc;

    int numFlows() const { return numNodes * injectorsPerNode; }
    int effectiveVcs() const
    {
        return vcsPerPort > 0 ? vcsPerPort : defaultVcsPerPort(topology);
    }
    FlowId flowOf(NodeId node, int injector) const
    {
        return node * injectorsPerNode + injector;
    }
    NodeId nodeOfFlow(FlowId flow) const { return flow / injectorsPerNode; }

    /// Normalize dependent fields (flow count) before building.
    void canonicalize() { pvc.numFlows = numFlows(); }
};

} // namespace taqos
