/// Record, check and audit flit traces from the command line — the
/// operational face of the independent verifier (src/verify).
///
///   verify_cli record out=trace.txt [run options]
///       run one column simulation with the trace recorder attached and
///       save the event stream
///   verify_cli check <trace.txt...> [--no-qos]
///       replay saved traces through the checker; exit 1 on the first
///       trace with violations, 2 on a malformed/truncated file
///   verify_cli audit [run options] [--no-qos]
///       record in memory and check immediately (no file) — the form the
///       CI smoke and nightly sampled audits use
///
/// Run options (key=value, all optional):
///   topo=dps|mecs|mesh_x1|mesh_x2|mesh_x4|fbfly   (default dps)
///   mode=pvc|per-flow|no-qos|gsf|age|wrr          (default pvc)
///   pattern=uniform|tornado|hotspot               (default uniform)
///   rate=R        flits/cycle/injector            (default 0.05)
///   workload=SPEC dynamic workload (steady | bursty:... | ramp:... |
///                 trace:path=...; churn has no column embedding) — the
///                 CI workload smoke audits a bursty cell through this
///   seed=S
///   warmup=C measure=C drain=C                    (default 2000/6000/4000)
///   legacy=1      use the always-tick reference engine
///   shards=N      run the sharded engine on N threads (bit-identical;
///                 the audit exercises its recorded trace)
///   fabric=1      record a multi-chip fabric run (FabricSim) instead of
///                 one column; with
///     chips=N tiles=N columns=a,b links=p2p|ring
///                 (tiles sets a square chip; columns the shared xs)
///
/// Examples:
///   verify_cli audit topo=dps mode=pvc rate=0.05
///   verify_cli record out=/tmp/t.txt topo=mecs pattern=hotspot legacy=1
///   verify_cli check /tmp/t.txt
///   verify_cli audit fabric=1 chips=4 tiles=32 columns=4,12 shards=4
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/strings.h"
#include "core/experiments.h"
#include "sim/column_sim.h"
#include "sim/fabric_sim.h"
#include "sim/trace_record.h"
#include "verify/checker.h"

using namespace taqos;

namespace {

struct RunOptions {
    ColumnConfig col;
    TrafficConfig traffic;
    WorkloadSpec workload;
    RunPhases phases = testPhases();
    bool legacy = false;
    int shards = 1;
    std::string out;
    /// fabric=1: record a multi-chip fabric run instead of one column.
    bool fabric = false;
    int chips = 1;
    int tiles = 0; ///< 0 = the default chip geometry
    std::vector<int> columns;
    LinkTopology links = LinkTopology::PointToPoint;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: verify_cli record out=FILE [run options]\n"
                 "       verify_cli check FILE... [--no-qos]\n"
                 "       verify_cli audit [run options] [--no-qos]\n");
    std::exit(2);
}

[[noreturn]] void
badOption(const std::string &opt)
{
    std::fprintf(stderr, "verify_cli: bad option '%s'\n", opt.c_str());
    std::exit(2);
}

RunOptions
parseRunOptions(const std::vector<std::string> &args)
{
    RunOptions run;
    TopologyKind topo = TopologyKind::Dps;
    QosMode mode = QosMode::Pvc;
    run.traffic.injectionRate = 0.05;
    for (const auto &arg : args) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos)
            badOption(arg);
        const std::string key = arg.substr(0, eq);
        const std::string val = arg.substr(eq + 1);
        if (key == "topo") {
            const auto t = parseTopology(val);
            if (!t.has_value())
                badOption(arg);
            topo = *t;
        } else if (key == "mode") {
            const auto m = parseQosMode(val);
            if (!m.has_value())
                badOption(arg);
            mode = *m;
        } else if (key == "pattern") {
            const auto p = parsePattern(val);
            if (!p.has_value())
                badOption(arg);
            run.traffic.pattern = *p;
        } else if (key == "rate") {
            run.traffic.injectionRate = std::atof(val.c_str());
        } else if (key == "workload") {
            std::string err;
            const auto w = WorkloadSpec::parse(val, &err);
            if (!w.has_value()) {
                std::fprintf(stderr, "verify_cli: %s\n", err.c_str());
                std::exit(2);
            }
            if (w->kind == WorkloadKind::Churn) {
                std::fprintf(stderr,
                             "verify_cli: tenant churn needs the "
                             "chip_consolidation scenario; the audited "
                             "column has no embedding for it\n");
                std::exit(2);
            }
            run.workload = *w;
        } else if (key == "seed") {
            run.traffic.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "warmup") {
            run.phases.warmup = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "measure") {
            run.phases.measure = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "drain") {
            run.phases.drain = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "legacy") {
            run.legacy = std::atoi(val.c_str()) != 0;
        } else if (key == "shards") {
            run.shards = std::atoi(val.c_str());
        } else if (key == "out") {
            run.out = val;
        } else if (key == "fabric") {
            run.fabric = std::atoi(val.c_str()) != 0;
        } else if (key == "chips") {
            run.chips = std::atoi(val.c_str());
        } else if (key == "tiles") {
            run.tiles = std::atoi(val.c_str());
        } else if (key == "columns") {
            run.columns = parseIntList(val);
        } else if (key == "links") {
            const auto l = parseLinkTopology(val);
            if (!l.has_value())
                badOption(arg);
            run.links = *l;
        } else {
            badOption(arg);
        }
    }
    run.col = paperColumn(topo, mode);
    return run;
}

/// Run the configured fabric with the recorder attached (fabric=1).
FlitTrace
recordFabricRun(const RunOptions &run)
{
    FabricSpec spec;
    spec.chips = run.chips;
    if (run.tiles > 0)
        spec.chip.tilesX = spec.chip.tilesY = run.tiles;
    if (!run.columns.empty())
        spec.chip.sharedColumns = run.columns;
    spec.column = run.col;
    spec.links = run.links;

    if (!run.workload.isSteady() && !run.workload.modulated()) {
        std::fprintf(stderr,
                     "verify_cli: fabric runs take steady/bursty/ramp "
                     "workloads, got %s\n",
                     workloadKindName(run.workload.kind));
        std::exit(2);
    }

    TrafficConfig traffic = run.traffic;
    traffic.genUntil = run.phases.measureEnd();

    FabricSim sim(spec, traffic, run.workload);
    sim.configure({.activityDriven = !run.legacy, .shards = run.shards});
    sim.setMeasureWindow(run.phases.warmup, run.phases.measureEnd());

    TraceRecorder rec(describeFabric(sim.network()));
    rec.setMeasureWindow(run.phases.warmup, run.phases.measureEnd());
    sim.attachTraceSink(&rec);

    const Cycle done = sim.runUntilDrained(run.phases.total() * 4,
                                           run.phases.measureEnd());
    rec.finish(sim.now(), done != kNoCycle && sim.drained());
    return rec.trace();
}

/// Run the configured column with the recorder attached; the generator
/// stops at the measurement end and the drain phase empties the network.
FlitTrace
recordRun(const RunOptions &run)
{
    if (run.fabric)
        return recordFabricRun(run);

    ColumnConfig col = run.col;
    TrafficConfig traffic = run.traffic;
    traffic.genUntil = run.phases.measureEnd();

    ColumnSim sim(col, traffic, run.workload);
    sim.configure({.activityDriven = !run.legacy, .shards = run.shards});
    sim.setMeasureWindow(run.phases.warmup, run.phases.measureEnd());

    TraceRecorder rec(describeColumn(col));
    rec.setMeasureWindow(run.phases.warmup, run.phases.measureEnd());
    sim.attachTraceSink(&rec);

    const Cycle done = sim.runUntilDrained(run.phases.total() * 4,
                                           run.phases.measureEnd());
    rec.finish(sim.now(), done != kNoCycle && sim.drained());
    return rec.trace();
}

int
reportTrace(const std::string &label, const FlitTrace &trace,
            const CheckOptions &opts)
{
    const CheckReport report = verifyTrace(trace, opts);
    if (report.ok()) {
        std::printf("%s: OK (%llu events, %zu ports)\n", label.c_str(),
                    static_cast<unsigned long long>(report.eventsChecked),
                    trace.ports.size());
        return 0;
    }
    std::printf("%s: %zu violation(s)\n", label.c_str(),
                report.violations.size());
    for (const Violation &v : report.violations)
        std::printf("  %s\n", formatViolation(v).c_str());
    return 1;
}

int
cmdRecord(const std::vector<std::string> &args)
{
    const RunOptions run = parseRunOptions(args);
    if (run.out.empty()) {
        std::fprintf(stderr, "verify_cli record: missing out=FILE\n");
        return 2;
    }
    const FlitTrace trace = recordRun(run);
    std::string err;
    if (!saveFlitTrace(run.out, trace, err)) {
        std::fprintf(stderr, "verify_cli: %s\n", err.c_str());
        return 2;
    }
    std::printf("recorded %zu events -> %s\n", trace.events.size(),
                run.out.c_str());
    return 0;
}

int
cmdCheck(const std::vector<std::string> &files, const CheckOptions &opts)
{
    if (files.empty())
        usage();
    int rc = 0;
    for (const auto &path : files) {
        FlitTrace trace;
        std::string err;
        if (!loadFlitTrace(path, trace, err)) {
            std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                         err.c_str());
            return 2;
        }
        rc = std::max(rc, reportTrace(path, trace, opts));
    }
    return rc;
}

int
cmdAudit(const std::vector<std::string> &args, const CheckOptions &opts)
{
    const RunOptions run = parseRunOptions(args);
    const FlitTrace trace = recordRun(run);
    std::string label = "audit";
    for (const auto &a : args)
        label += " " + a;
    return reportTrace(label, trace, opts);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    CheckOptions opts;
    std::vector<std::string> rest;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-qos")
            opts.qosAudit = false;
        else
            rest.push_back(arg);
    }
    if (cmd == "record")
        return cmdRecord(rest);
    if (cmd == "check")
        return cmdCheck(rest, opts);
    if (cmd == "audit")
        return cmdAudit(rest, opts);
    usage();
}
