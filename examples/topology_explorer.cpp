/// Interactive what-if tool: evaluate any shared-region topology under
/// any traffic pattern and QOS mode, with the cost models alongside.
///
///   $ ./topology_explorer topology=mecs pattern=tornado rate=0.08
///   $ ./topology_explorer topology=dps pattern=hotspot mode=no-qos
#include <cstdio>

#include "core/taqos.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);

    const auto kind = parseTopology(opts.get("topology", "dps"));
    const auto pattern = parsePattern(opts.get("pattern", "uniform"));
    const auto mode = parseQosMode(opts.get("mode", "pvc"));
    if (!kind || !pattern || !mode) {
        std::fprintf(stderr,
                     "usage: topology_explorer [topology=mesh_x1|mesh_x2|"
                     "mesh_x4|mecs|dps]\n"
                     "       [pattern=uniform|tornado|hotspot] [rate=0.05]\n"
                     "       [mode=pvc|per-flow|no-qos|gsf|age|wrr] "
                     "[cycles=50000] [frame=50000] [window=16]\n");
        return 1;
    }

    ColumnConfig col;
    col.topology = *kind;
    col.mode = *mode;
    col.pvc.frameLen = static_cast<Cycle>(opts.getInt("frame", 50000));
    col.pvc.windowLimit = static_cast<int>(opts.getInt("window", 16));

    TrafficConfig traffic;
    traffic.pattern = *pattern;
    traffic.injectionRate = opts.getDouble("rate", 0.05);
    traffic.seed = static_cast<std::uint64_t>(opts.getInt("seed", 0x7a05c0de));

    const Cycle measure = static_cast<Cycle>(opts.getInt("cycles", 50000));
    const Cycle warmup = measure / 5;

    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(warmup, warmup + measure);
    sim.run(warmup + measure);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    RunningStat perFlow;
    for (auto flits : m.flowFlits)
        perFlow.push(static_cast<double>(flits));

    TextTable t("taqos topology explorer");
    t.setHeader({"metric", "value"});
    t.addRow({"topology", topologyName(*kind)});
    t.addRow({"qos mode", qosModeName(col.mode)});
    t.addRow({"pattern", patternName(*pattern)});
    t.addRow({"offered (flits/cyc/inj)",
              strFormat("%.3f", traffic.injectionRate)});
    t.addRow({"accepted (flits/cyc/inj)",
              strFormat("%.4f", m.throughputFlitsPerCycle(measure) / 64.0)});
    t.addRow({"avg latency (cycles)", strFormat("%.1f", m.latency.mean())});
    t.addRow({"p95 latency (cycles)",
              strFormat("%.1f", m.latencyHist.percentile(0.95))});
    t.addRow({"per-flow stddev",
              strFormat("%.2f%%", perFlow.mean() > 0
                                      ? 100.0 * perFlow.stddev() /
                                            perFlow.mean()
                                      : 0.0)});
    t.addRow({"preemption events",
              strFormat("%llu",
                        static_cast<unsigned long long>(m.preemptionEvents))});
    t.addRow({"hops replayed",
              strFormat("%.2f%%", 100.0 * m.preemptionHopRate())});
    t.addRule();

    const RouterGeometry geom = representativeGeometry(*kind, col);
    const AreaBreakdown area = computeRouterArea(geom, tech32nm());
    const RouterEnergyProfile energy = computeRouterEnergy(geom, tech32nm());
    t.addRow({"router area (mm^2)", strFormat("%.4f", area.totalMm2())});
    t.addRow({"  buffers / xbar / flow",
              strFormat("%.4f / %.4f / %.4f", area.buffersMm2(),
                        area.xbarMm2, area.flowStateMm2)});
    t.addRow({"buffer R+W energy (pJ/flit)",
              strFormat("%.2f", energy.bufferReadPj + energy.bufferWritePj)});
    t.addRow({"xbar energy (pJ/flit)", strFormat("%.2f", energy.xbarPj)});

    std::printf("%s", t.render().c_str());
    return 0;
}
