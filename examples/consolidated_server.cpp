/// Server consolidation (the paper's Sec. 1 motivation): several
/// virtualized servers with different priorities share one CMP. The
/// hypervisor allocates each VM a convex domain, co-schedules threads, and
/// programs the shared column's flow registers with the VMs' SLA weights;
/// PVC then delivers memory bandwidth in proportion to priority, and the
/// isolation audit confirms no interference outside the QOS region.
/// The scenario runs cycle-accurately end to end on the whole chip:
/// every VM's memory requests traverse its row mesh into the
/// QOS-protected column.
///
///   $ ./consolidated_server
#include <cstdio>

#include "core/taqos.h"

using namespace taqos;

int
main()
{
    const ChipConfig chip; // 256 tiles, 8x8 nodes, shared column at x=4
    OsScheduler os(chip);

    // Three servers with different service classes.
    struct Server {
        int id;
        const char *name;
        int threads;
        std::uint32_t weight;
    };
    const Server servers[] = {
        {1, "web frontend (external)", 64, 4},
        {2, "database (external)", 48, 2},
        {3, "intranet batch", 32, 1},
    };

    std::printf("=== VM admission ===\n");
    for (const auto &s : servers) {
        const auto vm = os.createVm(s.id, s.threads, s.weight);
        if (!vm.has_value()) {
            std::printf("  %s: admission FAILED\n", s.name);
            return 1;
        }
        std::printf("  %-26s %2d threads -> %2zu-node convex domain, "
                    "weight %u\n",
                    s.name, s.threads, vm->domain.size(), s.weight);
    }
    std::printf("  co-scheduling invariant: %s\n",
                os.coScheduleInvariant() ? "OK" : "VIOLATED");

    // Isolation audit over all legal traffic.
    MecsRouter router(chip);
    IsolationAuditor audit(chip);
    for (const auto &vm : os.vms()) {
        for (const auto &a : vm.domain.nodes()) {
            for (const auto &b : vm.domain.nodes())
                if (!(a == b))
                    audit.addRoute(vm.id, router.routeXY(a, b));
            for (int row = 0; row < chip.nodesY(); ++row)
                audit.addRoute(vm.id, router.routeToSharedColumn(a, row));
        }
    }
    // Web <-> database IPC rides the QOS-protected column.
    const VmInfo *web = os.vm(1);
    const VmInfo *db = os.vm(2);
    for (const auto &a : web->domain.nodes())
        audit.addRoute(1,
                       router.routeInterDomain(a, db->domain.nodes().front()));
    std::printf("  isolation audit: %zu violations\n\n",
                audit.audit().size());

    // Program the shared column's flow registers from the VM weights and
    // run the whole chip — row meshes plus the DPS + PVC column —
    // cycle-accurately until every memory request has drained.
    ChipNetConfig cfg;
    cfg.chip = chip;
    cfg.column.topology = TopologyKind::Dps;
    cfg.column.numNodes = chip.nodesY();
    cfg.column.pvc = os.columnFlowRegisters(cfg.columnX(), cfg.column);

    std::printf("=== full-chip run: rows -> shared DPS column (PVC) ===\n");
    TrafficConfig traffic = makeHotspotAll(cfg.column, 0.05);
    traffic.genUntil = 110000;
    ChipSim sim(cfg, traffic);
    sim.setMeasureWindow(10000, 110000);
    const Cycle done = sim.runUntilDrained(400000, traffic.genUntil);
    sim.checkInvariants();
    std::printf("  %llu packets delivered, %llu row handoffs, "
                "%llu preemptions\n",
                static_cast<unsigned long long>(
                    sim.metrics().deliveredPackets),
                static_cast<unsigned long long>(sim.handoffs()),
                static_cast<unsigned long long>(
                    sim.metrics().preemptionEvents));
    if (done == kNoCycle)
        std::printf("  drain: budget exhausted\n\n");
    else
        std::printf("  drained at cycle %llu, invariants clean\n\n",
                    static_cast<unsigned long long>(done));

    // Attribute delivered bandwidth back to VMs through node ownership.
    double vmFlits[4] = {};
    const SimMetrics &m = sim.metrics();
    const ChipNetwork &net = sim.network();
    for (int row = 0; row < chip.nodesY(); ++row) {
        for (int k = 1; k < cfg.column.injectorsPerNode; ++k) {
            const int owner = os.ownerOf(NodeCoord{net.computeXOf(k), row});
            if (owner >= 1 && owner <= 3) {
                vmFlits[owner] += static_cast<double>(
                    m.flowFlits[static_cast<std::size_t>(
                        cfg.column.flowOf(row, k))]);
            }
        }
    }
    for (const auto &s : servers) {
        const VmInfo *vm = os.vm(s.id);
        const double perNode =
            vmFlits[s.id] / static_cast<double>(vm->domain.size());
        std::printf("  %-26s weight %u -> %8.0f flits (%.0f per node)\n",
                    s.name, s.weight, vmFlits[s.id], perNode);
    }
    std::printf("\nPer-node service should scale with the programmed "
                "weights (4 : 2 : 1),\nindependent of where each VM sits "
                "on the die.\n");
    return 0;
}
