/// Server consolidation (the paper's Sec. 1 motivation): several
/// virtualized servers with different priorities share one CMP. The
/// hypervisor allocates each VM a convex domain, co-schedules threads, and
/// programs the shared column's flow registers with the VMs' SLA weights;
/// PVC then delivers memory bandwidth in proportion to priority, and the
/// isolation audit confirms no interference outside the QOS region.
///
///   $ ./consolidated_server
#include <cstdio>

#include "core/taqos.h"

using namespace taqos;

int
main()
{
    const ChipConfig chip; // 256 tiles, 8x8 nodes, shared column at x=4
    OsScheduler os(chip);

    // Three servers with different service classes.
    struct Server {
        int id;
        const char *name;
        int threads;
        std::uint32_t weight;
    };
    const Server servers[] = {
        {1, "web frontend (external)", 64, 4},
        {2, "database (external)", 48, 2},
        {3, "intranet batch", 32, 1},
    };

    std::printf("=== VM admission ===\n");
    for (const auto &s : servers) {
        const auto vm = os.createVm(s.id, s.threads, s.weight);
        if (!vm.has_value()) {
            std::printf("  %s: admission FAILED\n", s.name);
            return 1;
        }
        std::printf("  %-26s %2d threads -> %2zu-node convex domain, "
                    "weight %u\n",
                    s.name, s.threads, vm->domain.size(), s.weight);
    }
    std::printf("  co-scheduling invariant: %s\n",
                os.coScheduleInvariant() ? "OK" : "VIOLATED");

    // Isolation audit over all legal traffic.
    MecsRouter router(chip);
    IsolationAuditor audit(chip);
    for (const auto &vm : os.vms()) {
        for (const auto &a : vm.domain.nodes()) {
            for (const auto &b : vm.domain.nodes())
                if (!(a == b))
                    audit.addRoute(vm.id, router.routeXY(a, b));
            for (int row = 0; row < chip.nodesY(); ++row)
                audit.addRoute(vm.id, router.routeToSharedColumn(a, row));
        }
    }
    // Web <-> database IPC rides the QOS-protected column.
    const VmInfo *web = os.vm(1);
    const VmInfo *db = os.vm(2);
    for (const auto &a : web->domain.nodes())
        audit.addRoute(1,
                       router.routeInterDomain(a, db->domain.nodes().front()));
    std::printf("  isolation audit: %zu violations\n\n",
                audit.audit().size());

    // Program the shared column's flow registers from the VM weights and
    // run the memory column under full load.
    ColumnConfig column;
    column.topology = TopologyKind::Dps;
    column.numNodes = chip.nodesY();
    column.pvc = os.columnFlowRegisters(4, column);

    std::printf("=== shared memory column under full load (DPS + PVC) ===\n");
    const TrafficConfig traffic = makeHotspotAll(column, 0.05);
    ColumnSim sim(column, traffic);
    sim.setMeasureWindow(10000, 110000);
    sim.run(110000);

    // Attribute delivered bandwidth back to VMs through node ownership.
    double vmFlits[4] = {};
    const SimMetrics &m = sim.metrics();
    for (int row = 0; row < chip.nodesY(); ++row) {
        int injector = 1;
        for (int x = 0; x < chip.nodesX(); ++x) {
            if (x == 4)
                continue;
            if (injector >= column.injectorsPerNode)
                break;
            const int owner = os.ownerOf(NodeCoord{x, row});
            const FlowId f = column.flowOf(row, injector);
            if (owner >= 1 && owner <= 3) {
                vmFlits[owner] += static_cast<double>(
                    m.flowFlits[static_cast<std::size_t>(f)]);
            }
            ++injector;
        }
    }
    for (const auto &s : servers) {
        const VmInfo *vm = os.vm(s.id);
        const double perNode =
            vmFlits[s.id] / static_cast<double>(vm->domain.size());
        std::printf("  %-26s weight %u -> %8.0f flits (%.0f per node)\n",
                    s.name, s.weight, vmFlits[s.id], perNode);
    }
    std::printf("\nPer-node service should scale with the programmed "
                "weights (4 : 2 : 1),\nindependent of where each VM sits "
                "on the die.\n");
    return 0;
}
