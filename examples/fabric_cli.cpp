/// Fabric-scale consolidated server from the command line: declare a
/// multi-chip fabric with a FabricSpec, admit the paper's three-VM mix on
/// every chip, and run the whole machine — all shared columns active,
/// cross-chip traffic over the inter-chip links — cycle-accurately to
/// drain. The default geometry is the kilo-node acceptance fabric:
/// 4 chips x 32x32 tiles x 2 shared columns = 1024 routers.
///
/// Options (key=value, all optional):
///   chips=4              chips in the fabric
///   tiles=32             tiles per chip edge (square; 4-way concentrated)
///   columns=4,12         shared-column grid xs
///   topo=dps             column topology (mesh_x1..fbfly)
///   mode=pvc             column QoS policy
///   links=p2p|ring       inter-chip link topology
///   rate=0.05            flits/cycle per owned compute node
///   remote=0.25          remote-chip share of each node's rate
///   workload=SPEC        dynamic workload (steady | bursty:... |
///                        ramp:...; burst=on,off,gain shorthand works
///                        too — trace/churn have no fabric embedding)
///   shards=1             engine shard threads (bit-identical)
///   crosscheck=N         also run with N shards and require the metrics
///                        digest to match the first run (exit 1 if not)
///   verify=1             record the flit trace and run the independent
///                        checker's audit on it (exit 1 on violations)
///   seed=S warmup=C measure=C drain=C
///   fast=1               short phases for smokes
///
/// Examples:
///   fabric_cli fast=1
///   fabric_cli chips=2 tiles=16 columns=4 links=ring verify=1
///   fabric_cli fast=1 shards=4 crosscheck=1 verify=1   # CI smoke
#include <cstdio>

#include "common/options.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);

    FabricConsolidationConfig cfg;
    cfg.chips = static_cast<int>(opts.getInt("chips", 4));
    const int tiles = static_cast<int>(opts.getInt("tiles", 32));
    cfg.chip.tilesX = cfg.chip.tilesY = tiles;
    cfg.chip.sharedColumns =
        opts.has("columns") ? parseIntList(opts.get("columns", ""))
                            : std::vector<int>{4, 12};
    cfg.topology = enumOption(opts, "topo", TopologyKind::Dps,
                              parseTopology, "topology",
                              joinNames(kAllTopologies, topologyName));
    cfg.mode = enumOption(opts, "mode", QosMode::Pvc, parseQosMode, "mode",
                          joinNames(kAllQosModes, qosModeName));
    cfg.links = enumOption(opts, "links", LinkTopology::PointToPoint,
                           parseLinkTopology, "link topology", "p2p ring");
    cfg.ratePerNode = opts.getDouble("rate", 0.05);
    cfg.remoteShare = opts.getDouble("remote", 0.25);
    const std::vector<WorkloadSpec> wspecs = workloadAxisFromOpts(opts);
    if (wspecs.size() > 1)
        optionError("fabric_cli takes a single workload spec");
    if (!wspecs.empty()) {
        if (!wspecs[0].isSteady() && !wspecs[0].modulated()) {
            optionError(strFormat(
                "fabric runs take steady/bursty/ramp workloads, got %s",
                workloadKindName(wspecs[0].kind)));
        }
        cfg.workload = wspecs[0];
    }
    cfg.shards = static_cast<int>(opts.getInt("shards", 1));
    cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));
    cfg.audit = opts.getBool("verify", false);
    cfg.phases = opts.getBool("fast", false) ? RunPhases{500, 2000, 1000}
                                             : RunPhases{2000, 8000, 4000};
    cfg.phases.warmup =
        static_cast<Cycle>(opts.getInt("warmup",
                                       static_cast<std::int64_t>(
                                           cfg.phases.warmup)));
    cfg.phases.measure =
        static_cast<Cycle>(opts.getInt("measure",
                                       static_cast<std::int64_t>(
                                           cfg.phases.measure)));
    cfg.phases.drain =
        static_cast<Cycle>(opts.getInt("drain",
                                       static_cast<std::int64_t>(
                                           cfg.phases.drain)));

    std::printf("=== fabric: %d chip(s) x %dx%d tiles, %zu shared "
                "column(s), %s links, %s/%s ===\n",
                cfg.chips, tiles, tiles, cfg.chip.sharedColumns.size(),
                linkTopologyName(cfg.links), topologyName(cfg.topology),
                qosModeName(cfg.mode));

    const FabricConsolidationResult res = runFabricConsolidation(cfg);
    std::printf("  %d routers, %llu packets delivered, %llu handoffs, "
                "%llu link hops, %llu preemptions\n",
                res.nodes,
                static_cast<unsigned long long>(res.deliveredPackets),
                static_cast<unsigned long long>(res.handoffs),
                static_cast<unsigned long long>(res.linkHops),
                static_cast<unsigned long long>(res.preemptions));
    std::printf("  avg latency %.1f cycles, digest %016llx\n",
                res.avgLatency,
                static_cast<unsigned long long>(res.digest));
    if (res.drainCycle == kNoCycle)
        std::printf("  drain: budget exhausted\n");
    else
        std::printf("  drained at cycle %llu, invariants clean\n",
                    static_cast<unsigned long long>(res.drainCycle));

    TextTable t;
    t.setHeader({"chip", "vm", "weight", "nodes", "flits", "flits/node"});
    for (const auto &vm : res.vms) {
        t.addRow({strFormat("%d", vm.chip), strFormat("%d", vm.vmId),
                  strFormat("%u", vm.weight),
                  strFormat("%zu", vm.domainNodes),
                  strFormat("%llu",
                            static_cast<unsigned long long>(vm.flits)),
                  strFormat("%.1f", vm.flitsPerNode)});
    }
    std::printf("\nPer-VM service (should scale with the programmed "
                "weights on every chip):\n%s\n",
                t.render().c_str());

    int rc = 0;
    if (cfg.audit) {
        if (res.auditOk) {
            std::printf("checker audit: OK (%llu events)\n",
                        static_cast<unsigned long long>(res.auditEvents));
        } else {
            std::printf("checker audit: FAILED — %s\n",
                        res.auditDiagnostic.c_str());
            rc = 1;
        }
    }

    const int crossShards = static_cast<int>(opts.getInt("crosscheck", 0));
    if (crossShards > 0) {
        FabricConsolidationConfig other = cfg;
        other.shards = crossShards;
        other.audit = false;
        const FabricConsolidationResult check =
            runFabricConsolidation(other);
        if (check.digest == res.digest) {
            std::printf("digest cross-check: OK (shards=%d == shards=%d)\n",
                        cfg.shards, crossShards);
        } else {
            std::printf("digest cross-check: MISMATCH (shards=%d %016llx "
                        "vs shards=%d %016llx)\n",
                        cfg.shards,
                        static_cast<unsigned long long>(res.digest),
                        crossShards,
                        static_cast<unsigned long long>(check.digest));
            rc = 1;
        }
    }
    if (res.drainCycle == kNoCycle)
        rc = 1;
    return rc;
}
