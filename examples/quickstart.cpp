/// Quickstart: build a QOS-protected shared column, run traffic through
/// it, and read the results.
///
///   $ ./quickstart
///
/// Walks through the three core objects: ColumnConfig (what to build),
/// TrafficConfig (what to offer), and ColumnSim (run + measure).
#include <cstdio>

#include "core/taqos.h"

using namespace taqos;

int
main()
{
    // 1. Configure the shared region: 8 terminals (memory controllers)
    //    connected by Destination Partitioned Subnets, protected by
    //    Preemptive Virtual Clock with the paper's 50K-cycle frame.
    ColumnConfig column;
    column.topology = TopologyKind::Dps;
    column.mode = QosMode::Pvc;

    // 2. Offer traffic: every one of the 64 injectors (8 nodes x
    //    [1 terminal + 7 row inputs]) streams at 4% flits/cycle to a
    //    uniformly random memory controller.
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.04;

    // 3. Simulate: warm up, measure, read the metrics.
    ColumnSim sim(column, traffic);
    sim.setMeasureWindow(10000, 60000);
    sim.run(70000);

    const SimMetrics &m = sim.metrics();
    std::printf("topology            : %s\n", topologyName(column.topology));
    std::printf("QOS                 : %s\n", qosModeName(column.mode));
    std::printf("offered load        : %.1f%% flits/cycle/injector\n",
                100.0 * traffic.injectionRate);
    std::printf("avg packet latency  : %.1f cycles\n", m.latency.mean());
    std::printf("95th pct latency    : %.1f cycles\n",
                m.latencyHist.percentile(0.95));
    std::printf("delivered           : %llu packets (%llu flits)\n",
                static_cast<unsigned long long>(m.deliveredPackets),
                static_cast<unsigned long long>(m.deliveredFlits));
    std::printf("accepted throughput : %.2f%% flits/cycle/injector\n",
                100.0 * m.throughputFlitsPerCycle(50000) / 64.0);
    std::printf("preemptions         : %llu\n",
                static_cast<unsigned long long>(m.preemptionEvents));

    // Per-flow service is what QOS is about: report the spread.
    RunningStat perFlow;
    for (auto flits : m.flowFlits)
        perFlow.push(static_cast<double>(flits));
    std::printf("per-flow flits      : mean %.0f, min %.0f, max %.0f "
                "(stddev %.1f%%)\n",
                perFlow.mean(), perFlow.min(), perFlow.max(),
                100.0 * perFlow.stddev() / perFlow.mean());

    // The analytic models answer cost questions without simulation.
    const RouterGeometry geom =
        representativeGeometry(column.topology, column);
    const AreaBreakdown area = computeRouterArea(geom, tech32nm());
    std::printf("router area         : %.4f mm^2 (%.1f%% buffers)\n",
                area.totalMm2(),
                100.0 * area.buffersMm2() / area.totalMm2());
    return 0;
}
