/// Cloud denial-of-service scenario (Sec. 1, after Ristenpart et al.):
/// a hostile tenant co-located on the CMP floods the memory controllers.
/// Without QOS the victim's memory throughput collapses and its latency
/// explodes; with PVC in the shared column the victim keeps its
/// provisioned share.
///
///   $ ./cloud_isolation [topology=dps]
#include <cstdio>

#include "core/taqos.h"

using namespace taqos;

namespace {

struct TenantResult {
    double victimFlits = 0.0;
    double attackerFlits = 0.0;
};

/// Victim: node 6's injectors at a modest 1.5% each. Attacker: all
/// injectors of nodes 1..3 blasting at 20% each, all towards the
/// node-0 memory controller.
TenantResult
run(TopologyKind kind, QosMode mode)
{
    ColumnConfig col;
    col.topology = kind;
    col.mode = mode;
    col.canonicalize();

    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.hotspotNode = 0;
    t.activeFlows.assign(static_cast<std::size_t>(col.numFlows()), false);
    t.flowRates.assign(static_cast<std::size_t>(col.numFlows()), -1.0);
    const auto activate = [&](FlowId f, double rate) {
        t.activeFlows[static_cast<std::size_t>(f)] = true;
        t.flowRates[static_cast<std::size_t>(f)] = rate;
    };
    for (int k = 0; k < col.injectorsPerNode; ++k) {
        activate(col.flowOf(6, k), 0.015); // victim
        for (NodeId n = 1; n <= 3; ++n)
            activate(col.flowOf(n, k), 0.20); // attacker
    }

    ColumnSim sim(col, t);
    sim.setMeasureWindow(10000, 110000);
    sim.run(110000);

    TenantResult r;
    const SimMetrics &m = sim.metrics();
    for (int k = 0; k < col.injectorsPerNode; ++k) {
        r.victimFlits += static_cast<double>(
            m.flowFlits[static_cast<std::size_t>(col.flowOf(6, k))]);
        for (NodeId n = 1; n <= 3; ++n)
            r.attackerFlits += static_cast<double>(
                m.flowFlits[static_cast<std::size_t>(col.flowOf(n, k))]);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const auto kind =
        parseTopology(opts.get("topology", "dps")).value_or(TopologyKind::Dps);

    // The victim asks for 8 x 1.5% = 12% of the memory controller — well
    // under its aggregate fair share (8/32 of the link).
    const double victimDemand = 8 * 0.015 * 100000;

    std::printf("Victim demand: %.0f flits over the run; attacker offers "
                "16x the link capacity.\n\n",
                victimDemand);
    std::printf("%-10s %-9s %14s %18s %16s\n", "topology", "mode",
                "victim flits", "% of its demand", "attacker flits");
    for (auto mode : {QosMode::NoQos, QosMode::Pvc}) {
        const TenantResult r = run(kind, mode);
        std::printf("%-10s %-9s %14.0f %17.1f%% %16.0f\n",
                    topologyName(kind), qosModeName(mode), r.victimFlits,
                    100.0 * r.victimFlits / victimDemand, r.attackerFlits);
    }
    std::printf("\nWith no QOS, locally-fair arbitration lets the "
                "co-located attacker take\nnearly the whole memory "
                "controller; PVC's per-flow accounting caps the\n"
                "attacker at its provisioned share and the victim's "
                "service is restored.\n");
    return 0;
}
