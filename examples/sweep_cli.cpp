/// Run any experiment sweep from the command line: declare the grid with
/// key=value options, execute it on the parallel SweepRunner, print the
/// per-grid-point aggregates, and optionally write the full JSON record.
///
/// Options (all optional):
///   preset=fig4|fig5|fig6|table2|adversarial
///       start from a paper-figure spec builder at paper-scale cycle
///       counts (fig5/fig6/adversarial share one grid: workloads 1+2);
///       later options override individual axes
///   scenario=latency_load|hotspot|adversarial|chip   (default latency_load)
///   topos=all | comma list (mesh_x1,mesh_x2,mesh_x4,mecs,dps,fbfly)
///   patterns=uniform,tornado,hotspot                 (latency_load only)
///   modes=pvc,per-flow,no-qos,gsf,age,wrr
///   rates=0.02,0.05 | lo:hi:step                     (flits/cycle/injector)
///   workloads=1,2                                    (adversarial only)
///   placements=0,1,2                                 (chip only)
///   workload=SPEC[;SPEC]  dynamic-workload axis (steady | bursty:... |
///                         ramp:... | trace:path=... | churn:...);
///                         ';'-separated because specs contain ','
///   trace=FILE inflate=F window=b:e loop=1   trace-replay shorthand
///   burst=on,off,gain | burst=1              ON/OFF bursty shorthand
///   churn=frames[,maxvms[,attack]] | churn=1 tenant-churn shorthand
///   reps=N seed=S mix=0|1
///   warmup=C measure=C drain=C gencycles=C
///   threads=N            (0 = hardware concurrency)
///   shards=N             intra-run shard threads per cell (default 1;
///                        bit-identical output — the runner divides the
///                        machine between cell workers and shards)
///   out=path.json        (write the taqos-sweep/v1 record)
///   cache=DIR            content-addressed cell cache: cells already in
///                        DIR are loaded instead of re-run, fresh cells
///                        are stored; output stays byte-identical to a
///                        cold sweep (invalidated by the engine salt)
///   checkpoint=FILE      single-cell grids only: warm-start from (or,
///                        cold, create) a checkpoint sidecar taken at
///                        the warmup boundary; exclusive with cache=
///   name=label
///
/// Examples:
///   sweep_cli rates=0.01:0.12:0.01 patterns=uniform,tornado out=fig4.json
///   sweep_cli scenario=hotspot reps=5 mix=1 out=table2.json
///   sweep_cli scenario=chip topos=dps placements=0,1,2 out=chip.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/options.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/cell_cache.h"
#include "exp/sweep.h"

using namespace taqos;

namespace {

/// Paper-figure presets: the same spec builders the figure drivers run,
/// at their paper-scale defaults. Axis options override on top.
bool
applyPreset(const std::string &name, SweepSpec &spec)
{
    if (name == "fig4") {
        std::vector<double> rates;
        for (double r = 0.01; r <= 0.15 + 1e-9; r += 0.01)
            rates.push_back(r);
        spec = fig4Spec(TrafficPattern::UniformRandom, rates);
        return true;
    }
    if (name == "fig5" || name == "fig6" || name == "adversarial") {
        // One grid backs both figures (workloads 1 and 2; each cell runs
        // PVC plus the preemption-free reference).
        spec = adversarialSpec(/*workload=*/0);
        spec.name = "fig5_fig6_adversarial";
        return true;
    }
    if (name == "table2") {
        spec = table2Spec();
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);

    SweepSpec spec;
    const std::string preset = opts.get("preset", "");
    if (!preset.empty() && !applyPreset(preset, spec)) {
        std::fprintf(stderr,
                     "unknown preset '%s'; valid: fig4 fig5 fig6 "
                     "adversarial table2\n",
                     preset.c_str());
        return 1;
    }
    if (opts.has("name"))
        spec.name = opts.get("name", "sweep_cli");
    else if (preset.empty())
        spec.name = "sweep_cli";

    if (preset.empty() || opts.has("scenario")) {
        spec.scenario = enumOption(opts, "scenario",
                                   *parseScenario("latency_load"),
                                   parseScenario, "scenario");
    }

    const std::string topos = opts.get("topos", "all");
    if (topos != "all") {
        spec.topologies =
            parseEnumList(topos, parseTopology, "topology",
                          joinNames(kAllTopologies, topologyName));
    }
    if (opts.has("patterns")) {
        spec.patterns =
            parseEnumList(opts.get("patterns", ""), parsePattern, "pattern");
    }
    if (opts.has("modes")) {
        spec.modes = parseEnumList(opts.get("modes", ""), parseQosMode,
                                   "mode", joinNames(kAllQosModes,
                                                     qosModeName));
    }
    if (opts.has("rates"))
        spec.rates = parseRateList(opts.get("rates", ""));
    if (opts.has("workloads"))
        spec.workloads = parseIntList(opts.get("workloads", ""));
    if (opts.has("placements"))
        spec.placements = parseIntList(opts.get("placements", ""));
    const std::vector<WorkloadSpec> wspecs = workloadAxisFromOpts(opts);
    if (!wspecs.empty())
        spec.workloadSpecs = wspecs;

    if (preset.empty() || opts.has("reps"))
        spec.replicates = static_cast<int>(opts.getInt("reps", 1));
    spec.baseSeed = static_cast<std::uint64_t>(
        opts.getInt("seed", static_cast<std::int64_t>(spec.baseSeed)));
    if (preset.empty() || opts.has("mix"))
        spec.mixSeeds = opts.getBool("mix", true);
    // Presets carry the figure's paper-scale phase/horizon defaults;
    // explicit options still override them.
    if (preset.empty() || opts.has("warmup")) {
        spec.phases.warmup =
            static_cast<Cycle>(opts.getInt("warmup", 20000));
    }
    if (preset.empty() || opts.has("measure")) {
        spec.phases.measure =
            static_cast<Cycle>(opts.getInt("measure", 50000));
    }
    if (preset.empty() || opts.has("drain"))
        spec.phases.drain = static_cast<Cycle>(opts.getInt("drain", 30000));
    if (preset.empty() || opts.has("gencycles")) {
        spec.genCycles =
            static_cast<Cycle>(opts.getInt("gencycles", 100000));
    }

    spec.shards = static_cast<int>(opts.getInt("shards", 1));

    const int threads = static_cast<int>(opts.getInt("threads", 0));
    const SweepRunner runner(threads);

    const std::string cacheDir = opts.get("cache", "");
    const std::string ckptFile = opts.get("checkpoint", "");
    if (!cacheDir.empty() && !ckptFile.empty()) {
        std::fprintf(stderr, "cache= and checkpoint= are exclusive\n");
        return 1;
    }

    SweepResult result;
    if (!ckptFile.empty()) {
        result.spec = spec.canonical();
        const std::vector<CellSpec> cells = result.spec.expand();
        if (cells.size() != 1) {
            std::fprintf(stderr,
                         "checkpoint= needs a single-cell grid, got %zu "
                         "cells\n",
                         cells.size());
            return 1;
        }
        bool restored = false;
        result.cells.push_back(
            SweepRunner::runCellCheckpointed(cells[0], ckptFile, &restored));
        result.aggregates = aggregateCells(result.spec, result.cells);
        std::printf("checkpoint %s: %s\n", ckptFile.c_str(),
                    restored ? "restored (warmup skipped)"
                             : "cold run (sidecar written)");
    } else if (!cacheDir.empty()) {
        CellCache cache(cacheDir);
        result = runner.run(spec, &cache);
        std::printf("cell cache %s: %zu hits, %zu misses\n",
                    cacheDir.c_str(), result.cacheHits, result.cacheMisses);
    } else {
        result = runner.run(spec);
    }

    std::printf("sweep '%s' (%s): %zu cells on %d threads, %.1f ms\n\n",
                result.spec.name.c_str(),
                scenarioName(result.spec.scenario), result.cells.size(),
                runner.threads(), result.wallMs);

    if (!result.aggregates.empty()) {
        // Metric columns are the union across grid points: cells of
        // different VM placements legitimately report different sets.
        std::vector<std::string> metricNames;
        for (const auto &agg : result.aggregates) {
            for (const auto &[name, rs] : agg.stats) {
                (void)rs;
                if (std::find(metricNames.begin(), metricNames.end(),
                              name) == metricNames.end())
                    metricNames.push_back(name);
            }
        }

        // The workload-spec column only appears when the axis is in
        // play, so steady sweeps render exactly as before.
        const bool showWspec = std::any_of(
            result.aggregates.begin(), result.aggregates.end(),
            [](const AggregateCell &a) {
                return !a.key.workloadSpec.isSteady();
            });

        TextTable t;
        std::vector<std::string> head{"topology", "pattern", "mode",
                                      "rate", "wl", "pl"};
        if (showWspec)
            head.push_back("wspec");
        head.insert(head.end(), metricNames.begin(), metricNames.end());
        t.setHeader(head);
        for (const auto &agg : result.aggregates) {
            std::vector<std::string> row{
                topologyName(agg.key.topology),
                patternName(agg.key.pattern),
                qosModeName(agg.key.mode),
                strFormat("%.3f", agg.key.rate),
                strFormat("%d", agg.key.workload),
                strFormat("%d", agg.key.placement)};
            if (showWspec)
                row.push_back(agg.key.workloadSpec.name());
            for (const auto &name : metricNames) {
                const auto it = std::find_if(
                    agg.stats.begin(), agg.stats.end(),
                    [&name](const auto &kv) { return kv.first == name; });
                if (it == agg.stats.end()) {
                    row.push_back("-");
                } else {
                    const RunningStat &rs = it->second;
                    row.push_back(rs.count() > 1
                                      ? strFormat("%.3g±%.2g", rs.mean(),
                                                  rs.stddev())
                                      : strFormat("%.4g", rs.mean()));
                }
            }
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    const std::string out = opts.get("out", "");
    if (!out.empty()) {
        if (!result.writeJson(out))
            return 1;
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
