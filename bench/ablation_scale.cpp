/// Scaling ablation: simulated cycles/second vs fabric size, serial vs
/// the sharded engine. Three fabric configurations on the uniform-random
/// workload, every shared column active:
///
///   scale_64    1 chip,  16x16 tiles (8x8 nodes),  1 shared column
///   scale_256   1 chip,  32x32 tiles (16x16 nodes), 2 shared columns
///   scale_1024  4 chips, 32x32 tiles, 2 shared columns, p2p links
///
/// Each config runs serial and with shards={2,4,8}; every sharded row is
/// digest-cross-checked against its serial twin (the bit-identity
/// contract — the whole point of the scaling curve is that the parallel
/// engine is free determinism-wise). Min-of-`reps` wall time per row.
///
/// Writes `BENCH_scale.json` (same schema as BENCH_hotpath.json) with
/// rows scale_<nodes>_s<shards>; CI wires it into compare_bench.py and
/// enforces scale_1024_s4 >= 1.3x scale_1024_s1 on its 4-vCPU runners
/// (single-core machines show ~1x — the pool parks its workers).
///
/// Options: fast=1 (short runs), reps=N (default 3, fast 1),
///          json=<path> (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/json_writer.h"
#include "sim/fabric_sim.h"

using namespace taqos;

namespace {

struct ScaleConfig {
    const char *label;
    int chips;
    int tiles;
    std::vector<int> columns;
};

struct ScaleRow {
    std::string name;
    int nodes = 0;
    Cycle cycles = 0;
    double sec = 0.0;
    std::uint64_t digest = 0;

    double rate() const
    {
        return sec > 0.0 ? static_cast<double>(cycles) / sec : 0.0;
    }
};

FabricSpec
specFor(const ScaleConfig &cfg)
{
    FabricSpec spec;
    spec.chips = cfg.chips;
    spec.chip.tilesX = spec.chip.tilesY = cfg.tiles;
    spec.chip.sharedColumns = cfg.columns;
    spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    return spec;
}

ScaleRow
timedFabricRun(const ScaleConfig &cfg, Cycle cycles, int shards, int reps)
{
    ScaleRow row;
    row.cycles = cycles;
    for (int r = 0; r < reps; ++r) {
        const FabricSpec spec = specFor(cfg);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.05;
        FabricSim sim(spec, traffic);
        if (shards > 1)
            sim.configure({.shards = shards});
        sim.setMeasureWindow(cycles / 4, cycles);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run(cycles);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        row.sec = r == 0 ? sec : std::min(row.sec, sec);
        row.digest = metricsDigest(sim.metrics());
        row.nodes = sim.net().numNodes();
    }
    row.name = strFormat("scale_%d_s%d", row.nodes, shards);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Scaling ablation: cycles/sec vs fabric size, serial vs sharded",
        "infrastructure (ROADMAP item 1: 1000+ router fabrics)");

    const bool fast = opts.getBool("fast", false);
    const int reps = static_cast<int>(opts.getInt("reps", fast ? 1 : 3));
    const std::vector<ScaleConfig> configs{
        {"64-node chip", 1, 16, {4}},
        {"256-node chip", 1, 32, {4, 12}},
        {"1024-node fabric", 4, 32, {4, 12}},
    };
    // Budget per row shrinks with size so the bench stays minutes-scale;
    // per-cycle work grows with the node count, keeping every row a
    // meaningful sample.
    const std::vector<Cycle> budgets{fast ? 8000u : 40000u,
                                     fast ? 4000u : 20000u,
                                     fast ? 2000u : 10000u};

    int mismatches = 0;
    std::vector<ScaleRow> rows;
    TextTable t;
    t.setHeader({"config", "nodes", "shards", "cyc/s", "vs serial",
                 "identical"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ScaleRow serial;
        for (int shards : {1, 2, 4, 8}) {
            const ScaleRow row =
                timedFabricRun(configs[i], budgets[i], shards, reps);
            if (shards == 1)
                serial = row;
            const bool same = row.digest == serial.digest;
            if (!same)
                ++mismatches;
            t.addRow({configs[i].label, strFormat("%d", row.nodes),
                      strFormat("%d", shards),
                      benchutil::num(row.rate(), 0),
                      strFormat("%.2fx", row.rate() / serial.rate()),
                      same ? "yes" : "NO"});
            rows.push_back(row);
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("(CI enforces scale_1024_s4 >= 1.3x scale_1024_s1 on its "
                "4-vCPU runners; single-core machines show ~1x shard "
                "scaling — the pool parks its workers.)\n");

    const std::string json = opts.get("json", "BENCH_scale.json");
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "scale");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.endObject();
    w.beginArray("results");
    for (const auto &row : rows) {
        w.beginObject();
        w.field("name", row.name);
        w.field("simCycles", row.cycles);
        w.field("wallMs", row.sec * 1e3);
        w.field("simCyclesPerSec", row.rate());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(json, w.str() + "\n"))
        std::printf("wrote %s\n", json.c_str());

    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d sharded rows diverged from serial\n",
                     mismatches);
        return 1;
    }
    return 0;
}
