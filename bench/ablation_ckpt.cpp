/// Ablation A8 (ours): the checkpoint/restore re-use layer. Times a
/// warmup-heavy fig4 cell (DPS/PVC, uniform 0.05) two ways — cold
/// (every rep pays the full warmup + measure run) and restore-per-rep
/// (the warmup is paid once, snapshotted, and every rep restores the
/// snapshot and runs only the measure phase) — cross-checking that the
/// restored rep's metrics digest is bit-identical to the cold rep's.
/// Then times a small latency/load sweep twice through the
/// content-addressed cell cache (exp/cell_cache.h): a cold populating
/// pass and a fully-warm pass that loads every cell.
///
/// Writes `BENCH_ckpt.json` (same schema as BENCH_micro.json) with rows
///   ckpt_cold / ckpt_restore          effective cell cycles per wall
///                                     second (the restore row also
///                                     carries saveMs/restoreMs)
///   ckpt_sweep_cold / ckpt_sweep_cached  sweep cycles per wall second
/// CI enforces restore >= 1.5x cold and cached >= 10x cold with
/// `compare_bench.py --min-speedup`, and gates the absolute rates
/// against bench/baseline.json.
///
/// The cell uses warmup-heavy phases (16k warmup / 4k measure): the
/// restore path's ceiling is total/measure = 5x, leaving headroom over
/// the 1.5x floor; the paper-default fig4 phases (20k/50k) would cap
/// the ideal speedup at 1.4x and gate on noise.
///
/// Options: fast=1 (short runs), reps=N (default 5, fast 3),
///          json=<path> (default BENCH_ckpt.json),
///          cachedir=<dir> (default BENCH_ckpt_cache, wiped first)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/cell_cache.h"
#include "exp/json_writer.h"
#include "exp/sweep.h"
#include "sim/column_sim.h"

using namespace taqos;

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::unique_ptr<ColumnSim>
makeCellSim(const RunPhases &phases)
{
    const ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.05;
    auto sim = std::make_unique<ColumnSim>(col, traffic);
    sim->setMeasureWindow(phases.warmup, phases.measureEnd());
    return sim;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Checkpoint/restore ablation: warm-start reps and the sweep "
        "cell cache vs cold re-runs",
        "infrastructure (Fig. 4 cell / latency-load sweep as workload)");

    const bool fast = opts.getBool("fast", false);
    const int reps = static_cast<int>(opts.getInt("reps", fast ? 3 : 5));
    RunPhases phases;
    phases.warmup = fast ? 8000 : 16000;
    phases.measure = fast ? 2000 : 4000;
    phases.drain = 0;

    // ---- cold vs restore-per-rep on one cell --------------------------
    double coldSec = 0.0;
    std::uint64_t coldDigest = 0;
    for (int r = 0; r < reps; ++r) {
        auto sim = makeCellSim(phases);
        const auto t0 = std::chrono::steady_clock::now();
        sim->run(phases.total());
        const double sec = secondsSince(t0);
        coldSec = r == 0 ? sec : std::min(coldSec, sec);
        coldDigest = metricsDigest(sim->metrics());
    }

    // Warm once; the snapshot pays for itself across the reps.
    std::string snapshot;
    double saveMs = 0.0;
    {
        auto warm = makeCellSim(phases);
        warm->run(phases.warmup);
        const auto t0 = std::chrono::steady_clock::now();
        std::ostringstream os;
        warm->saveCheckpoint(os);
        saveMs = secondsSince(t0) * 1e3;
        snapshot = os.str();
    }

    double restoreSec = 0.0;
    double restoreMs = 0.0;
    std::uint64_t restoredDigest = 0;
    for (int r = 0; r < reps; ++r) {
        auto sim = makeCellSim(phases);
        const auto t0 = std::chrono::steady_clock::now();
        std::istringstream is(snapshot);
        std::string err;
        if (!sim->restoreCheckpoint(is, &err)) {
            std::fprintf(stderr, "restore failed: %s\n", err.c_str());
            return 1;
        }
        const double rm = secondsSince(t0) * 1e3;
        sim->run(phases.total() - phases.warmup);
        const double sec = secondsSince(t0);
        restoreSec = r == 0 ? sec : std::min(restoreSec, sec);
        restoreMs = r == 0 ? rm : std::min(restoreMs, rm);
        restoredDigest = metricsDigest(sim->metrics());
    }

    const auto cellCycles = static_cast<double>(phases.total());
    const double coldRate = cellCycles / coldSec;
    const double restoreRate = cellCycles / restoreSec;

    // ---- cold vs fully-cached sweep -----------------------------------
    SweepSpec spec;
    spec.name = "ckpt_bench";
    spec.topologies = {TopologyKind::Dps, TopologyKind::Mecs};
    spec.rates = fast ? std::vector<double>{0.02, 0.05}
                      : std::vector<double>{0.02, 0.05, 0.08};
    spec.replicates = 2;
    spec.phases.warmup = fast ? 500 : 2000;
    spec.phases.measure = fast ? 2000 : 5000;
    spec.phases.drain = fast ? 500 : 2000;

    const std::string cacheDir = opts.get("cachedir", "BENCH_ckpt_cache");
    std::filesystem::remove_all(cacheDir);
    CellCache cache(cacheDir);
    const SweepRunner runner(1); // serial: time the work, not the pool

    const auto tCold = std::chrono::steady_clock::now();
    const SweepResult coldSweep = runner.run(spec, &cache);
    const double sweepColdSec = secondsSince(tCold);

    const auto tWarm = std::chrono::steady_clock::now();
    const SweepResult warmSweep = runner.run(spec, &cache);
    const double sweepWarmSec = secondsSince(tWarm);

    const bool sweepIdentical = coldSweep.toJson() == warmSweep.toJson();
    const bool allHits = warmSweep.cacheHits == warmSweep.cells.size() &&
                         warmSweep.cacheMisses == 0;
    const double sweepCycles =
        static_cast<double>(coldSweep.cells.size()) *
        static_cast<double>(spec.phases.total());
    const double sweepColdRate = sweepCycles / sweepColdSec;
    const double sweepCachedRate = sweepCycles / sweepWarmSec;

    // ---- report -------------------------------------------------------
    TextTable t;
    t.setHeader({"row", "cyc/s", "speedup", "identical"});
    t.addRow({"ckpt_cold", benchutil::num(coldRate, 0), "1.00x", "-"});
    t.addRow({"ckpt_restore", benchutil::num(restoreRate, 0),
              strFormat("%.2fx", coldSec / restoreSec),
              coldDigest == restoredDigest ? "yes" : "NO"});
    t.addRow({"ckpt_sweep_cold", benchutil::num(sweepColdRate, 0), "1.00x",
              "-"});
    t.addRow({"ckpt_sweep_cached", benchutil::num(sweepCachedRate, 0),
              strFormat("%.2fx", sweepColdSec / sweepWarmSec),
              sweepIdentical && allHits ? "yes" : "NO"});
    std::printf("%s\n", t.render().c_str());
    std::printf("snapshot: %zu bytes, save %.2f ms, restore %.2f ms\n",
                snapshot.size(), saveMs, restoreMs);
    std::printf("restore-per-rep speedup %.2fx (CI floor 1.5x), cached "
                "sweep %.2fx (CI floor 10x)\n",
                coldSec / restoreSec, sweepColdSec / sweepWarmSec);

    const std::string json = opts.get("json", "BENCH_ckpt.json");
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "ckpt");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.endObject();
    w.beginArray("results");
    w.beginObject();
    w.field("name", "ckpt_cold");
    w.field("simCycles", phases.total());
    w.field("wallMs", coldSec * 1e3);
    w.field("simCyclesPerSec", coldRate);
    w.endObject();
    w.beginObject();
    w.field("name", "ckpt_restore");
    w.field("simCycles", phases.total());
    w.field("wallMs", restoreSec * 1e3);
    w.field("saveMs", saveMs);
    w.field("restoreMs", restoreMs);
    w.field("snapshotBytes", snapshot.size());
    w.field("simCyclesPerSec", restoreRate);
    w.endObject();
    w.beginObject();
    w.field("name", "ckpt_sweep_cold");
    w.field("simCycles", sweepCycles);
    w.field("wallMs", sweepColdSec * 1e3);
    w.field("simCyclesPerSec", sweepColdRate);
    w.endObject();
    w.beginObject();
    w.field("name", "ckpt_sweep_cached");
    w.field("simCycles", sweepCycles);
    w.field("wallMs", sweepWarmSec * 1e3);
    w.field("simCyclesPerSec", sweepCachedRate);
    w.endObject();
    w.endArray();
    w.endObject();
    if (!writeTextFile(json, w.str() + "\n")) {
        std::fprintf(stderr, "failed to write %s\n", json.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json.c_str());

    // Bit-identity is the contract; a divergence is a failure, not a
    // footnote in the table.
    if (coldDigest != restoredDigest) {
        std::fprintf(stderr, "restored digest diverged from cold run\n");
        return 1;
    }
    if (!sweepIdentical || !allHits) {
        std::fprintf(stderr,
                     "cached sweep not byte-identical or not all hits "
                     "(%zu hits, %zu misses)\n",
                     warmSweep.cacheHits, warmSweep.cacheMisses);
        return 1;
    }
    return 0;
}
