/// Ablation A6 (ours): the activity-driven simulation core. Runs the
/// fig4 grid (five topologies x injection rates) twice per cell — once on
/// the activity-driven engine (default) and once on the legacy
/// always-tick reference — cross-checks that both produce bit-identical
/// metrics, and times each. Reports simulated cycles/second split into
/// the low-rate half of the grid (rate <= 0.05, where quiet cycles
/// dominate and the worklist pays off; target >= 2x) and the saturation
/// half (where every router has work every cycle; target: no slowdown).
///
/// Writes `BENCH_hotpath.json` (same schema as BENCH_micro.json) with
/// aggregate rows hotpath_{activity,legacy}_{low,sat}; the CI perf gate
/// compares the activity rows against bench/baseline.json and enforces
/// the low-rate speedup with `compare_bench.py --min-speedup`.
///
/// Each (cell, engine) pair runs `reps` times and keeps the best wall
/// time (classic min-of-N: the minimum estimates the true cost, the
/// rest is scheduler noise — important on shared CI runners).
///
/// Also runs the sharded-execution ablation into `BENCH_shard.json`:
///   - layout_{object,arena}_serial: the arena/SoA hot-state layout vs
///     the object-graph baseline, serial engine, on a 64-node column
///     (the layout must not be a serial regression — CI floor 0.95x);
///   - shard_mecs_s{1,2,4,8}: the sharded engine on the same 64-node
///     column at a saturating rate;
///   - shard_chip_s{1,2,4,8}: the whole-chip consolidation config.
/// Every variant is digest-cross-checked against its serial twin (the
/// bit-identity contract); CI enforces shard_*_s4 >= 1.3x shard_*_s1 on
/// its 4-vCPU runners.
///
/// Options: fast=1 (short runs), reps=N (default 3, fast 2),
///          json=<path> (default BENCH_hotpath.json),
///          shardjson=<path> (default BENCH_shard.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/arena.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/json_writer.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"

using namespace taqos;

namespace {

struct EngineTotals {
    double lowSec = 0.0;
    double satSec = 0.0;
    std::uint64_t lowCycles = 0;
    std::uint64_t satCycles = 0;

    double rate(bool low) const
    {
        const double sec = low ? lowSec : satSec;
        const auto cyc = static_cast<double>(low ? lowCycles : satCycles);
        return sec > 0.0 ? cyc / sec : 0.0;
    }
};

/// One timed cell: returns the wall seconds and leaves the digest for the
/// cross-check.
double
timedRun(TopologyKind kind, double rate, Cycle cycles, bool activity,
         std::uint64_t *digest)
{
    const ColumnConfig col = paperColumn(kind, QosMode::Pvc);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = rate;
    ColumnSim sim(col, traffic);
    sim.configure({.activityDriven = activity});
    sim.setMeasureWindow(cycles / 4, cycles);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(cycles);
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    *digest = metricsDigest(sim.metrics());
    return sec;
}

/// One timed row of the shard/layout ablation.
struct ShardRow {
    std::string name;
    std::uint64_t cycles = 0;
    double sec = 0.0;
    std::uint64_t digest = 0;

    double rate() const
    {
        return sec > 0.0 ? static_cast<double>(cycles) / sec : 0.0;
    }
};

/// The 64-node column the shard rows scale on: large enough that 4-8
/// regions still hold several routers each, saturated so every router
/// has work every cycle. MECS, not mesh_x1: the packet charge log caps
/// at 12 hops per attempt, which a 63-hop 1-D mesh traversal would
/// overflow — MECS buses reach any row peer in one hop.
ColumnConfig
bigColumn()
{
    ColumnConfig col = paperColumn(TopologyKind::Mecs, QosMode::Pvc);
    col.numNodes = 64;
    col.canonicalize();
    return col;
}

ShardRow
timedColumnRun(std::string name, const ColumnConfig &col, double rate,
               Cycle cycles, int shards, int reps)
{
    ShardRow row;
    row.name = std::move(name);
    row.cycles = cycles;
    for (int r = 0; r < reps; ++r) {
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = rate;
        ColumnSim sim(col, traffic);
        if (shards > 1)
            sim.configure({.shards = shards});
        sim.setMeasureWindow(cycles / 4, cycles);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run(cycles);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        row.sec = r == 0 ? sec : std::min(row.sec, sec);
        row.digest = metricsDigest(sim.metrics());
    }
    return row;
}

ShardRow
timedChipRun(std::string name, Cycle cycles, int shards, int reps)
{
    ShardRow row;
    row.name = std::move(name);
    row.cycles = cycles;
    for (int r = 0; r < reps; ++r) {
        ChipNetConfig cc;
        cc.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        cc.column.pvc.frameLen = 2000;
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.05;
        ChipSim sim(cc, traffic);
        if (shards > 1)
            sim.configure({.shards = shards});
        sim.setMeasureWindow(cycles / 4, cycles);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run(cycles);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        row.sec = r == 0 ? sec : std::min(row.sec, sec);
        row.digest = metricsDigest(sim.metrics());
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Activity-driven core ablation: cycles/sec vs the always-tick "
        "engine",
        "infrastructure (Fig. 4 grid used as the workload)");

    const bool fast = opts.getBool("fast", false);
    const Cycle cycles = fast ? 20000 : 80000;
    const int reps = static_cast<int>(opts.getInt("reps", fast ? 2 : 3));
    const std::vector<double> lowRates{0.01, 0.02, 0.03, 0.05};
    const std::vector<double> satRates{0.10, 0.12, 0.15};

    EngineTotals activity;
    EngineTotals legacy;
    int mismatches = 0;

    TextTable t;
    t.setHeader({"topology", "rate", "legacy cyc/s", "activity cyc/s",
                 "speedup", "identical"});
    for (auto kind : kAllTopologies) {
        for (bool low : {true, false}) {
            for (double rate : low ? lowRates : satRates) {
                std::uint64_t dActive = 0;
                std::uint64_t dLegacy = 0;
                double sActive = 0.0;
                double sLegacy = 0.0;
                for (int r = 0; r < reps; ++r) {
                    const double a =
                        timedRun(kind, rate, cycles, true, &dActive);
                    const double l =
                        timedRun(kind, rate, cycles, false, &dLegacy);
                    sActive = r == 0 ? a : std::min(sActive, a);
                    sLegacy = r == 0 ? l : std::min(sLegacy, l);
                }
                if (dActive != dLegacy)
                    ++mismatches;
                (low ? activity.lowSec : activity.satSec) += sActive;
                (low ? legacy.lowSec : legacy.satSec) += sLegacy;
                (low ? activity.lowCycles : activity.satCycles) += cycles;
                (low ? legacy.lowCycles : legacy.satCycles) += cycles;
                t.addRow({topologyName(kind), strFormat("%.2f", rate),
                          benchutil::num(static_cast<double>(cycles) /
                                             sLegacy,
                                         0),
                          benchutil::num(static_cast<double>(cycles) /
                                             sActive,
                                         0),
                          strFormat("%.2fx", sLegacy / sActive),
                          dActive == dLegacy ? "yes" : "NO"});
            }
        }
    }
    std::printf("%s\n", t.render().c_str());

    // The printed floors are the ones CI actually enforces with
    // compare_bench.py --min-speedup; quiet cells reach 2-3x, but the
    // rate <= 0.05 half also contains cells that are saturated on the
    // narrow mesh topologies, which caps the aggregate (see README
    // "Performance").
    const double lowSpeedup = activity.rate(true) / legacy.rate(true);
    const double satSpeedup = activity.rate(false) / legacy.rate(false);
    std::printf("low-rate half  (rate <= 0.05): %.0f vs %.0f cycles/s "
                "(%.2fx, CI floor 1.5x)\n",
                activity.rate(true), legacy.rate(true), lowSpeedup);
    std::printf("saturation half (rate >= 0.10): %.0f vs %.0f cycles/s "
                "(%.2fx, CI floor 1.0x)\n",
                activity.rate(false), legacy.rate(false), satSpeedup);

    const std::string json = opts.get("json", "BENCH_hotpath.json");
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "hotpath");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.endObject();
    w.beginArray("results");
    const auto emit = [&w](const char *name, const EngineTotals &e,
                           bool low) {
        w.beginObject();
        w.field("name", name);
        w.field("simCycles", low ? e.lowCycles : e.satCycles);
        w.field("wallMs", (low ? e.lowSec : e.satSec) * 1e3);
        w.field("simCyclesPerSec", e.rate(low));
        w.endObject();
    };
    emit("hotpath_activity_low", activity, true);
    emit("hotpath_legacy_low", legacy, true);
    emit("hotpath_activity_sat", activity, false);
    emit("hotpath_legacy_sat", legacy, false);
    w.endArray();
    w.endObject();
    if (writeTextFile(json, w.str() + "\n"))
        std::printf("wrote %s\n", json.c_str());

    // ---------------- sharded-execution and hot-layout ablation ----------

    const Cycle shardCycles = fast ? 10000 : 40000;
    const ColumnConfig big = bigColumn();
    std::vector<ShardRow> shardRows;

    // Layout ablation first (serial engine, big column): the arena pass
    // must not cost serial throughput. Construction happens under the
    // selected layout; restore the default afterwards.
    setHotLayout(HotLayout::ObjectGraph);
    shardRows.push_back(timedColumnRun("layout_object_serial", big, 0.10,
                                       shardCycles, 1, reps));
    setHotLayout(HotLayout::Arena);
    shardRows.push_back(timedColumnRun("layout_arena_serial", big, 0.10,
                                       shardCycles, 1, reps));
    if (shardRows[0].digest != shardRows[1].digest)
        ++mismatches;

    // Shard scaling on the big column and on the whole-chip config; every
    // row must stay bit-identical to its serial (s1) twin.
    for (int shards : {1, 2, 4, 8}) {
        shardRows.push_back(
            timedColumnRun(strFormat("shard_mecs_s%d", shards), big, 0.10,
                           shardCycles, shards, reps));
    }
    for (int shards : {1, 2, 4, 8}) {
        shardRows.push_back(timedChipRun(strFormat("shard_chip_s%d", shards),
                                         shardCycles / 2, shards, reps));
    }
    for (const char *base : {"shard_mecs_s1", "shard_chip_s1"}) {
        const auto ref = std::find_if(
            shardRows.begin(), shardRows.end(),
            [base](const ShardRow &r) { return r.name == base; });
        for (const auto &row : shardRows) {
            if (row.name.rfind(std::string(base).substr(0, 11), 0) == 0 &&
                row.digest != ref->digest)
                ++mismatches;
        }
    }

    TextTable st;
    st.setHeader({"row", "cyc/s", "vs serial", "identical"});
    for (const auto &row : shardRows) {
        const char *base = row.name.rfind("shard_chip", 0) == 0
                               ? "shard_chip_s1"
                               : (row.name.rfind("shard_mecs", 0) == 0
                                      ? "shard_mecs_s1"
                                      : "layout_object_serial");
        const auto ref = std::find_if(
            shardRows.begin(), shardRows.end(),
            [base](const ShardRow &r) { return r.name == base; });
        st.addRow({row.name, benchutil::num(row.rate(), 0),
                   strFormat("%.2fx", row.rate() / ref->rate()),
                   row.digest == ref->digest ? "yes" : "NO"});
    }
    std::printf("%s\n", st.render().c_str());
    std::printf("(CI enforces shard_*_s4 >= 1.3x shard_*_s1 on 4-vCPU "
                "runners and layout_arena_serial >= 0.95x "
                "layout_object_serial; single-core machines will show "
                "~1x shard scaling — the pool parks its workers.)\n");

    const std::string shardJson = opts.get("shardjson", "BENCH_shard.json");
    JsonWriter sw;
    sw.beginObject();
    sw.field("benchmark", "shard");
    sw.beginObject("unit");
    sw.field("simCyclesPerSec", "Hz");
    sw.endObject();
    sw.beginArray("results");
    for (const auto &row : shardRows) {
        sw.beginObject();
        sw.field("name", row.name);
        sw.field("simCycles", row.cycles);
        sw.field("wallMs", row.sec * 1e3);
        sw.field("simCyclesPerSec", row.rate());
        sw.endObject();
    }
    sw.endArray();
    sw.endObject();
    if (writeTextFile(shardJson, sw.str() + "\n"))
        std::printf("wrote %s\n", shardJson.c_str());

    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d cells diverged between the engines\n",
                     mismatches);
        return 1;
    }
    return 0;
}
