/// Ablation A6 (ours): the activity-driven simulation core. Runs the
/// fig4 grid (five topologies x injection rates) twice per cell — once on
/// the activity-driven engine (default) and once on the legacy
/// always-tick reference — cross-checks that both produce bit-identical
/// metrics, and times each. Reports simulated cycles/second split into
/// the low-rate half of the grid (rate <= 0.05, where quiet cycles
/// dominate and the worklist pays off; target >= 2x) and the saturation
/// half (where every router has work every cycle; target: no slowdown).
///
/// Writes `BENCH_hotpath.json` (same schema as BENCH_micro.json) with
/// aggregate rows hotpath_{activity,legacy}_{low,sat}; the CI perf gate
/// compares the activity rows against bench/baseline.json and enforces
/// the low-rate speedup with `compare_bench.py --min-speedup`.
///
/// Each (cell, engine) pair runs `reps` times and keeps the best wall
/// time (classic min-of-N: the minimum estimates the true cost, the
/// rest is scheduler noise — important on shared CI runners).
///
/// Options: fast=1 (short runs), reps=N (default 3, fast 2),
///          json=<path> (default BENCH_hotpath.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/json_writer.h"
#include "sim/column_sim.h"

using namespace taqos;

namespace {

struct EngineTotals {
    double lowSec = 0.0;
    double satSec = 0.0;
    std::uint64_t lowCycles = 0;
    std::uint64_t satCycles = 0;

    double rate(bool low) const
    {
        const double sec = low ? lowSec : satSec;
        const auto cyc = static_cast<double>(low ? lowCycles : satCycles);
        return sec > 0.0 ? cyc / sec : 0.0;
    }
};

/// One timed cell: returns the wall seconds and leaves the digest for the
/// cross-check.
double
timedRun(TopologyKind kind, double rate, Cycle cycles, bool activity,
         std::uint64_t *digest)
{
    const ColumnConfig col = paperColumn(kind, QosMode::Pvc);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = rate;
    ColumnSim sim(col, traffic);
    sim.setActivityDriven(activity);
    sim.setMeasureWindow(cycles / 4, cycles);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(cycles);
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    *digest = metricsDigest(sim.metrics());
    return sec;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Activity-driven core ablation: cycles/sec vs the always-tick "
        "engine",
        "infrastructure (Fig. 4 grid used as the workload)");

    const bool fast = opts.getBool("fast", false);
    const Cycle cycles = fast ? 20000 : 80000;
    const int reps = static_cast<int>(opts.getInt("reps", fast ? 2 : 3));
    const std::vector<double> lowRates{0.01, 0.02, 0.03, 0.05};
    const std::vector<double> satRates{0.10, 0.12, 0.15};

    EngineTotals activity;
    EngineTotals legacy;
    int mismatches = 0;

    TextTable t;
    t.setHeader({"topology", "rate", "legacy cyc/s", "activity cyc/s",
                 "speedup", "identical"});
    for (auto kind : kAllTopologies) {
        for (bool low : {true, false}) {
            for (double rate : low ? lowRates : satRates) {
                std::uint64_t dActive = 0;
                std::uint64_t dLegacy = 0;
                double sActive = 0.0;
                double sLegacy = 0.0;
                for (int r = 0; r < reps; ++r) {
                    const double a =
                        timedRun(kind, rate, cycles, true, &dActive);
                    const double l =
                        timedRun(kind, rate, cycles, false, &dLegacy);
                    sActive = r == 0 ? a : std::min(sActive, a);
                    sLegacy = r == 0 ? l : std::min(sLegacy, l);
                }
                if (dActive != dLegacy)
                    ++mismatches;
                (low ? activity.lowSec : activity.satSec) += sActive;
                (low ? legacy.lowSec : legacy.satSec) += sLegacy;
                (low ? activity.lowCycles : activity.satCycles) += cycles;
                (low ? legacy.lowCycles : legacy.satCycles) += cycles;
                t.addRow({topologyName(kind), strFormat("%.2f", rate),
                          benchutil::num(static_cast<double>(cycles) /
                                             sLegacy,
                                         0),
                          benchutil::num(static_cast<double>(cycles) /
                                             sActive,
                                         0),
                          strFormat("%.2fx", sLegacy / sActive),
                          dActive == dLegacy ? "yes" : "NO"});
            }
        }
    }
    std::printf("%s\n", t.render().c_str());

    // The printed floors are the ones CI actually enforces with
    // compare_bench.py --min-speedup; quiet cells reach 2-3x, but the
    // rate <= 0.05 half also contains cells that are saturated on the
    // narrow mesh topologies, which caps the aggregate (see README
    // "Performance").
    const double lowSpeedup = activity.rate(true) / legacy.rate(true);
    const double satSpeedup = activity.rate(false) / legacy.rate(false);
    std::printf("low-rate half  (rate <= 0.05): %.0f vs %.0f cycles/s "
                "(%.2fx, CI floor 1.5x)\n",
                activity.rate(true), legacy.rate(true), lowSpeedup);
    std::printf("saturation half (rate >= 0.10): %.0f vs %.0f cycles/s "
                "(%.2fx, CI floor 1.0x)\n",
                activity.rate(false), legacy.rate(false), satSpeedup);

    const std::string json = opts.get("json", "BENCH_hotpath.json");
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "hotpath");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.endObject();
    w.beginArray("results");
    const auto emit = [&w](const char *name, const EngineTotals &e,
                           bool low) {
        w.beginObject();
        w.field("name", name);
        w.field("simCycles", low ? e.lowCycles : e.satCycles);
        w.field("wallMs", (low ? e.lowSec : e.satSec) * 1e3);
        w.field("simCyclesPerSec", e.rate(low));
        w.endObject();
    };
    emit("hotpath_activity_low", activity, true);
    emit("hotpath_legacy_low", legacy, true);
    emit("hotpath_activity_sat", activity, false);
    emit("hotpath_legacy_sat", legacy, false);
    w.endArray();
    w.endObject();
    if (writeTextFile(json, w.str() + "\n"))
        std::printf("wrote %s\n", json.c_str());

    if (mismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: %d cells diverged between the engines\n",
                     mismatches);
        return 1;
    }
    return 0;
}
