/// Figure 4: average packet latency vs injection rate on uniform random
/// and tornado traffic, for all five shared-region topologies. Saturated
/// points (incomplete delivery) are flagged; the paper's curves end at
/// saturation.
///
/// Each pattern is one SweepSpec (topologies x rates) executed on the
/// parallel SweepRunner; json=<prefix> writes the taqos-sweep/v1 record
/// per pattern (<prefix>_<pattern>.json).
///
/// Options: fast=1 (short phases), pattern=uniform|tornado (default both),
///          mode=pvc|per-flow|no-qos|gsf|age|wrr (default pvc),
///          rates=a,b,c|lo:hi:step (overrides maxrate/step),
///          maxrate=0.15, step=0.01, threads=N, json=<prefix>,
///          workload=SPEC | trace=FILE... | burst=on,off,gain
///          (single dynamic-workload spec; churn has no column embedding)
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

namespace {

void
runPattern(TrafficPattern pattern, const std::vector<double> &rates,
           const RunPhases &phases, int threads, const std::string &json,
           QosMode mode, const WorkloadSpec &workload)
{
    std::printf("--- %s traffic (%s, %s) ---\n", patternName(pattern),
                qosModeName(mode), workload.name().c_str());
    SweepSpec spec = fig4Spec(pattern, rates, phases, mode);
    spec.workloadSpecs = {workload};
    const SweepResult result = SweepRunner(threads).run(spec);
    const auto series = latencySeriesFromSweep(result);
    if (!json.empty()) {
        const std::string path =
            strFormat("%s_%s.json", json.c_str(), patternName(pattern));
        if (result.writeJson(path))
            std::printf("wrote %s\n", path.c_str());
    }

    TextTable t;
    std::vector<std::string> head{"rate"};
    for (const auto &s : series)
        head.push_back(topologyName(s.topology));
    t.setHeader(head);

    for (std::size_t p = 0; p < rates.size(); ++p) {
        std::vector<std::string> row{
            strFormat("%.0f%%", 100.0 * rates[p])};
        for (const auto &s : series) {
            const LatencyPoint &pt = s.points[p];
            row.push_back(pt.saturated
                              ? std::string("sat")
                              : benchutil::num(pt.avgLatency, 1));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());

    TextTable thr;
    head[0] = "rate";
    thr.setHeader(head);
    for (std::size_t p = 0; p < rates.size(); ++p) {
        std::vector<std::string> row{
            strFormat("%.0f%%", 100.0 * rates[p])};
        for (const auto &s : series)
            row.push_back(benchutil::num(100.0 * s.points[p].throughput, 2));
        thr.addRow(row);
    }
    std::printf("Accepted throughput (%% flits/cycle/injector):\n%s\n",
                thr.render().c_str());
    std::printf("CSV (latency):\n%s\n", t.renderCsv().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Latency vs injection rate (cycles; 'sat' = beyond saturation)",
        "Figure 4(a) uniform random, Figure 4(b) tornado (Sec. 5.2)");

    RunPhases phases;
    if (opts.getBool("fast", false))
        phases = RunPhases{5000, 15000, 10000};

    std::vector<double> rates;
    if (opts.has("rates")) {
        rates = parseRateList(opts.get("rates", ""));
    } else {
        const double maxRate = opts.getDouble("maxrate", 0.15);
        const double step = opts.getDouble("step", 0.01);
        if (step <= 0.0 || maxRate <= 0.0) {
            optionError(strFormat("bad rates '%g:%g': want a,b,c or "
                                  "lo:hi:step (step > 0)",
                                  maxRate, step));
        }
        for (double r = step; r <= maxRate + 1e-9; r += step)
            rates.push_back(r);
    }

    const int threads = static_cast<int>(opts.getInt("threads", 0));
    const std::string json = opts.get("json", "");
    const QosMode mode = enumOption(opts, "mode", QosMode::Pvc,
                                    parseQosMode, "mode",
                                    joinNames(kAllQosModes, qosModeName));
    const std::vector<WorkloadSpec> wspecs = workloadAxisFromOpts(opts);
    if (wspecs.size() > 1)
        optionError("fig4_latency takes a single workload spec");
    WorkloadSpec workload;
    if (!wspecs.empty()) {
        if (wspecs[0].kind == WorkloadKind::Churn) {
            optionError("tenant churn needs the chip_consolidation "
                        "scenario, not latency_load");
        }
        workload = wspecs[0];
    }

    const std::string which = opts.get("pattern", "both");
    if (which != "both" && which != "uniform" && which != "tornado")
        unknownValue("pattern", which, "both uniform tornado");
    if (which == "both" || which == "uniform")
        runPattern(TrafficPattern::UniformRandom, rates, phases, threads,
                   json, mode, workload);
    if (which == "both" || which == "tornado")
        runPattern(TrafficPattern::Tornado, rates, phases, threads, json,
                   mode, workload);

    std::printf(
        "Paper expectations: mesh_x1/x2 saturate first (lowest bisection);\n"
        "MECS and DPS ~13%% faster than meshes on uniform random; on tornado\n"
        "MECS ~7%% faster than DPS (~24%% vs mesh); mesh_x4 competitive on\n"
        "random but cannot balance tornado.\n");
    return 0;
}
