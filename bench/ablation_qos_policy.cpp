/// Ablation A5 (ours): the QOS-policy layer, end to end — every supported
/// arbitration policy (PVC, per-flow queueing, no-qos, GSF, age-based,
/// WRR) swept over the Fig. 4 grid (five topologies x injection rates),
/// one policy per series. Positions the paper's preemptive scheme against
/// the frame-based (GSF, after Lee et al. [15]) and locally-fair
/// alternatives Sec. 2 discusses.
///
/// Before the sweep, a fixed-work timing pass writes
/// `BENCH_qos_policy.json` (simulated cycles/second per policy, same
/// schema as BENCH_micro.json) so the CI perf gate covers the arbitration
/// hot path of every policy.
///
/// Options: fast=1 (short phases), maxrate=0.1, step=0.02, threads=N,
///          json=<path> (taqos-sweep/v1 record of the full grid)
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/json_writer.h"
#include "sim/column_sim.h"

using namespace taqos;

namespace {

/// One policy's arbitration-path cost: simulated cycles/second of a DPS
/// column at a moderate uniform load (the micro_bench convention).
void
writePolicyPerfJson(const char *path)
{
    constexpr Cycle kCycles = 20000;
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "qos_policy");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.field("wallMs", "ms");
    w.endObject();
    w.beginArray("results");
    for (QosMode mode : kAllQosModes) {
        const ColumnConfig col = paperColumn(TopologyKind::Dps, mode);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(col, traffic);
        sim.run(2000); // warm-up outside the timed window
        const auto t0 = std::chrono::steady_clock::now();
        sim.run(kCycles);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        w.beginObject();
        w.field("name", std::string("qos_policy_") + qosModeName(mode));
        w.field("simCycles", static_cast<std::uint64_t>(kCycles));
        w.field("wallMs", sec * 1e3);
        w.field("simCyclesPerSec", static_cast<double>(kCycles) / sec);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(path, w.str() + "\n"))
        std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Arbitration-policy ablation: latency vs load, all six policies",
        "Fig. 4 grid; Sec. 2 related schemes (GSF after Lee et al. [15])");

    writePolicyPerfJson("BENCH_qos_policy.json");

    RunPhases phases{5000, 15000, 10000};
    if (opts.getBool("fast", false))
        phases = RunPhases{1000, 4000, 2000};

    const double maxRate = opts.getDouble("maxrate", 0.1);
    const double step = opts.getDouble("step", 0.02);
    std::vector<double> rates;
    for (double r = step; r <= maxRate + 1e-9; r += step)
        rates.push_back(r);

    SweepSpec spec = fig4Spec(TrafficPattern::UniformRandom, rates, phases);
    spec.name = "ablation_qos_policy";
    spec.modes.assign(std::begin(kAllQosModes), std::end(kAllQosModes));

    const SweepResult result =
        SweepRunner(static_cast<int>(opts.getInt("threads", 0))).run(spec);
    const std::string json = opts.get("json", "");
    if (!json.empty() && result.writeJson(json))
        std::printf("wrote %s\n", json.c_str());

    // One latency table per topology: rate rows x policy columns.
    for (auto kind : result.spec.topologies) {
        TextTable t;
        std::vector<std::string> head{"rate"};
        for (QosMode mode : kAllQosModes)
            head.push_back(qosModeName(mode));
        t.setHeader(head);
        for (double rate : rates) {
            std::vector<std::string> row{strFormat("%.0f%%", 100.0 * rate)};
            for (QosMode mode : kAllQosModes) {
                for (const auto &cell : result.cells) {
                    if (cell.spec.topology != kind ||
                        cell.spec.mode != mode || cell.spec.rate != rate)
                        continue;
                    row.push_back(cell.get("saturated") > 0.5
                                      ? std::string("sat")
                                      : benchutil::num(
                                            cell.get("avg_latency"), 1));
                    break;
                }
            }
            t.addRow(row);
        }
        std::printf("--- %s (avg latency, cycles) ---\n%s\n",
                    topologyName(kind), t.render().c_str());
    }

    std::printf(
        "Expected: per-flow matches pvc until its unbounded buffers mask\n"
        "saturation; no-qos matches on uniform traffic (no hotspot here);\n"
        "gsf adds frame-granular batching latency near saturation; age\n"
        "tracks pvc; wrr trades some latency for strict weight tracking.\n");
    return 0;
}
