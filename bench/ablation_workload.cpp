/// Ablation A9 (ours): the dynamic-workload subsystem. Times one
/// DPS/PVC latency cell under each workload shape — steady (the
/// modulator-free fast path), ON/OFF bursty, diurnal ramp — plus the
/// tenant-churn consolidation cell, and cross-checks on every row that
/// the shards=4 run of the same cell reproduces the serial metrics
/// exactly (the sharding contract extended to modulated generation and
/// mid-run flow-register reprogramming).
///
/// Writes `BENCH_workload.json` (same schema as BENCH_micro.json) with
/// rows
///   workload_steady / workload_bursty / workload_ramp
///                         column-cell cycles per wall second
///   workload_churn        chip-churn-cell cycles per wall second
/// CI gates the absolute rates against bench/baseline.json; the binary
/// itself exits 1 when any sharded row diverges from its serial twin.
///
/// Options: fast=1 (short runs), reps=N (default 5, fast 3),
///          json=<path> (default BENCH_workload.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "exp/json_writer.h"
#include "exp/sweep.h"

using namespace taqos;

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

struct Row {
    std::string name;
    double cycles = 0.0;
    double wallSec = 0.0;
    bool identical = false;
    CellResult serial;
};

CellSpec
columnCell(const WorkloadSpec &w, const RunPhases &phases)
{
    CellSpec cell;
    cell.scenario = Scenario::LatencyLoad;
    cell.topology = TopologyKind::Dps;
    cell.mode = QosMode::Pvc;
    cell.rate = 0.05;
    cell.workloadSpec = w;
    cell.phases = phases;
    cell.seed = 0x7a05c0de;
    return cell;
}

/// Time the cell's serial run (best of `reps`) and require the shards=4
/// run to report identical metrics — value-exact, not approximate.
Row
timeCell(const std::string &name, const CellSpec &cell, double cycles,
         int reps)
{
    Row row;
    row.name = name;
    row.cycles = cycles;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        row.serial = SweepRunner::runCell(cell);
        const double sec = secondsSince(t0);
        row.wallSec = r == 0 ? sec : std::min(row.wallSec, sec);
    }
    CellSpec sharded = cell;
    sharded.shards = 4;
    const CellResult other = SweepRunner::runCell(sharded);
    row.identical = row.serial.metrics == other.metrics;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Dynamic-workload ablation: steady vs bursty vs ramp cells and "
        "the tenant-churn consolidation cell",
        "datacenter-style workloads over the Sec. 4/5 scenarios (ours)");

    const bool fast = opts.getBool("fast", false);
    const int reps = static_cast<int>(opts.getInt("reps", fast ? 3 : 5));

    RunPhases colPhases;
    colPhases.warmup = fast ? 500 : 2000;
    colPhases.measure = fast ? 2000 : 8000;
    colPhases.drain = fast ? 500 : 2000;

    WorkloadSpec bursty;
    bursty.kind = WorkloadKind::Bursty;
    WorkloadSpec ramp;
    ramp.kind = WorkloadKind::Ramp;
    ramp.rampPeriod = fast ? 1000 : 4000;
    WorkloadSpec churn;
    churn.kind = WorkloadKind::Churn;

    std::vector<Row> rows;
    const double colCycles = static_cast<double>(colPhases.total());
    rows.push_back(timeCell("workload_steady",
                            columnCell(WorkloadSpec{}, colPhases),
                            colCycles, reps));
    rows.push_back(timeCell("workload_bursty", columnCell(bursty, colPhases),
                            colCycles, reps));
    rows.push_back(
        timeCell("workload_ramp", columnCell(ramp, colPhases), colCycles,
                 reps));

    // Churn epochs land on QOS-frame boundaries (the paper's 50K-cycle
    // frame), so the cell must run past 100K cycles for the tenant mix
    // to actually change twice mid-run.
    CellSpec churnCell;
    churnCell.scenario = Scenario::ChipConsolidation;
    churnCell.topology = TopologyKind::Dps;
    churnCell.mode = QosMode::Pvc;
    churnCell.rate = 0.02;
    churnCell.workloadSpec = churn;
    churnCell.phases = fast ? RunPhases{500, 104500, 5000}
                            : RunPhases{2000, 148000, 8000};
    churnCell.seed = 0x7a05c0de;
    rows.push_back(timeCell("workload_churn", churnCell,
                            static_cast<double>(churnCell.phases.total()),
                            fast ? 1 : reps));
    if (rows.back().serial.get("churn_epochs") < 1.0) {
        std::fprintf(stderr,
                     "workload_churn: no churn epoch fired (run too "
                     "short for the QOS frame)\n");
        return 1;
    }

    TextTable t;
    t.setHeader({"row", "cyc/s", "vs steady", "shards=4 identical"});
    const double steadyRate = rows[0].cycles / rows[0].wallSec;
    for (const auto &row : rows) {
        const double rate = row.cycles / row.wallSec;
        t.addRow({row.name, benchutil::num(rate, 0),
                  strFormat("%.2fx", rate / steadyRate),
                  row.identical ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());

    const std::string json = opts.get("json", "BENCH_workload.json");
    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "workload");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.endObject();
    w.beginArray("results");
    for (const auto &row : rows) {
        w.beginObject();
        w.field("name", row.name);
        w.field("simCycles", row.cycles);
        w.field("wallMs", row.wallSec * 1e3);
        w.field("simCyclesPerSec", row.cycles / row.wallSec);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!writeTextFile(json, w.str() + "\n")) {
        std::fprintf(stderr, "failed to write %s\n", json.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json.c_str());

    // Serial == sharded is the contract for every workload shape; a
    // divergence is a failure, not a footnote.
    for (const auto &row : rows) {
        if (!row.identical) {
            std::fprintf(stderr,
                         "%s: shards=4 metrics diverged from serial\n",
                         row.name.c_str());
            return 1;
        }
    }
    return 0;
}
