/// Ablation A1 (ours): chip-level router cost of hardware QOS at every
/// node (the Fig. 1(a) baseline) versus the topology-aware scheme that
/// confines QOS to the shared columns (Fig. 1(b)) — quantifying the
/// "significant savings in router cost" claim of Secs. 1-2.
#include <cstdio>

#include "bench_util.h"
#include "chip/chip_cost.h"
#include "common/table.h"
#include "topo/topology.h"

using namespace taqos;

int
main()
{
    benchutil::header(
        "Chip-wide router cost: QOS everywhere vs topology-aware",
        "Secs. 1-2 claim (ablation, not a paper figure)");

    const ChipConfig chip;
    TextTable t;
    t.setHeader({"shared topology", "QOS everywhere (mm^2)",
                 "topology-aware (mm^2)", "savings", "flow state saved",
                 "buffers saved"});
    for (auto kind : kAllTopologies) {
        const ChipCostReport r = chipCostComparison(chip, kind);
        t.addRow({topologyName(kind),
                  benchutil::num(r.qosEverywhereMm2, 3),
                  benchutil::num(r.topologyAwareMm2, 3),
                  benchutil::pct(r.savingsPct()),
                  benchutil::num(r.flowStateSavedMm2, 3) + " mm^2",
                  benchutil::num(r.buffersSavedMm2, 3) + " mm^2"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("256-tile CMP, 4-way concentration (8x8 nodes), one shared "
                "column.\nCompute routers shed PVC flow state, the reserved "
                "VC, and arbitration\ncomplexity; the shared column keeps "
                "full QOS support.\n");
    return 0;
}
