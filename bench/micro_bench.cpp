/// Google-benchmark microbenchmarks: simulator cycle throughput per
/// topology, router arbitration cost, RNG, and max-min allocation — the
/// performance envelope of the library itself.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/experiments.h"
#include "core/maxmin.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

using namespace taqos;

namespace {

void
BM_SimCycles(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    const ColumnConfig col = paperColumn(kind);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.08;
    ColumnSim sim(col, traffic);
    sim.run(2000); // warm the pipes
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(topologyName(kind));
}

void
BM_SimHotspotCycles(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    const ColumnConfig col = paperColumn(kind);
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, traffic);
    sim.run(2000);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(topologyName(kind));
}

void
BM_Rng(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextU64());
}

void
BM_MaxMin(benchmark::State &state)
{
    std::vector<double> demands(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < demands.size(); ++i)
        demands[i] = 0.01 + 0.001 * static_cast<double>(i % 37);
    for (auto _ : state)
        benchmark::DoNotOptimize(maxMinAllocation(demands, 1.0));
}

void
BM_BuildColumn(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    for (auto _ : state) {
        ColumnConfig col = paperColumn(kind);
        benchmark::DoNotOptimize(ColumnNetwork::build(col));
    }
    state.SetLabel(topologyName(kind));
}

} // namespace

BENCHMARK(BM_SimCycles)->DenseRange(0, 4);
BENCHMARK(BM_SimHotspotCycles)->DenseRange(0, 4);
BENCHMARK(BM_Rng);
BENCHMARK(BM_MaxMin)->Arg(64)->Arg(1024);
BENCHMARK(BM_BuildColumn)->DenseRange(0, 4);

BENCHMARK_MAIN();
