/// Google-benchmark microbenchmarks: simulator cycle throughput per
/// topology (column and whole chip), router arbitration cost, RNG, and
/// max-min allocation — the performance envelope of the library itself.
///
/// Before the google-benchmark suite runs, a fixed-work timing pass
/// writes `BENCH_micro.json` (simulated cycles/second, wall time and
/// delivered flits/cycle per topology) so the perf trajectory of the
/// repo is recorded machine-readably on every run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/experiments.h"
#include "core/maxmin.h"
#include "exp/json_writer.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

using namespace taqos;

namespace {

void
BM_SimCycles(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    const ColumnConfig col = paperColumn(kind);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.08;
    ColumnSim sim(col, traffic);
    sim.run(2000); // warm the pipes
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(topologyName(kind));
}

void
BM_SimHotspotCycles(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    const ColumnConfig col = paperColumn(kind);
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, traffic);
    sim.run(2000);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(topologyName(kind));
}

void
BM_ChipSimCycles(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    ChipNetConfig cfg;
    cfg.column = paperColumn(kind);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = 0.04;
    ChipSim sim(cfg, traffic);
    sim.run(2000);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(topologyName(kind));
}

void
BM_Rng(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextU64());
}

void
BM_MaxMin(benchmark::State &state)
{
    std::vector<double> demands(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < demands.size(); ++i)
        demands[i] = 0.01 + 0.001 * static_cast<double>(i % 37);
    for (auto _ : state)
        benchmark::DoNotOptimize(maxMinAllocation(demands, 1.0));
}

void
BM_BuildColumn(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    for (auto _ : state) {
        ColumnConfig col = paperColumn(kind);
        benchmark::DoNotOptimize(ColumnNetwork::build(col));
    }
    state.SetLabel(topologyName(kind));
}

void
BM_BuildChip(benchmark::State &state)
{
    const auto kind = static_cast<TopologyKind>(state.range(0));
    for (auto _ : state) {
        ChipNetConfig cfg;
        cfg.column = paperColumn(kind);
        benchmark::DoNotOptimize(ChipNetwork::build(cfg));
    }
    state.SetLabel(topologyName(kind));
}

// ------------------------------------------------- BENCH_micro.json pass

struct MicroRow {
    std::string name;
    Cycle cycles = 0;
    double wallMs = 0.0;
    double simCyclesPerSec = 0.0;
    double deliveredFlitsPerCycle = 0.0;
};

template <typename Sim>
MicroRow
timeSim(const std::string &name, Sim &sim, Cycle cycles)
{
    sim.run(2000); // warm-up outside the timed window
    const auto flitsBefore = sim.metrics().deliveredFlits;
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(cycles);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();

    MicroRow row;
    row.name = name;
    row.cycles = cycles;
    row.wallMs = sec * 1e3;
    row.simCyclesPerSec = static_cast<double>(cycles) / sec;
    row.deliveredFlitsPerCycle =
        static_cast<double>(sim.metrics().deliveredFlits - flitsBefore) /
        static_cast<double>(cycles);
    return row;
}

void
writeMicroJson(const char *path)
{
    constexpr Cycle kCycles = 20000;
    std::vector<MicroRow> rows;
    for (auto kind : kAllTopologies) {
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(paperColumn(kind), traffic);
        rows.push_back(timeSim(std::string("column_") + topologyName(kind),
                               sim, kCycles));
    }
    {
        ChipNetConfig cfg;
        cfg.column = paperColumn(TopologyKind::Dps);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.04;
        ChipSim sim(cfg, traffic);
        rows.push_back(timeSim("chip_dps", sim, kCycles));
    }

    JsonWriter w;
    w.beginObject();
    w.field("benchmark", "micro");
    w.beginObject("unit");
    w.field("simCyclesPerSec", "Hz");
    w.field("wallMs", "ms");
    w.endObject();
    w.beginArray("results");
    for (const MicroRow &r : rows) {
        w.beginObject();
        w.field("name", r.name);
        w.field("simCycles", static_cast<std::uint64_t>(r.cycles));
        w.field("wallMs", r.wallMs);
        w.field("simCyclesPerSec", r.simCyclesPerSec);
        w.field("deliveredFlitsPerCycle", r.deliveredFlitsPerCycle);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (writeTextFile(path, w.str() + "\n"))
        std::printf("wrote %s (%zu entries)\n", path, rows.size());
}

} // namespace

BENCHMARK(BM_SimCycles)->DenseRange(0, 4);
BENCHMARK(BM_SimHotspotCycles)->DenseRange(0, 4);
BENCHMARK(BM_ChipSimCycles)->DenseRange(0, 4);
BENCHMARK(BM_Rng);
BENCHMARK(BM_MaxMin)->Arg(64)->Arg(1024);
BENCHMARK(BM_BuildColumn)->DenseRange(0, 4);
BENCHMARK(BM_BuildChip)->DenseRange(0, 4);

int
main(int argc, char **argv)
{
    writeMicroJson("BENCH_micro.json");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
