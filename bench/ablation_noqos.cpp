/// Ablation A3 (ours): the motivating starvation result the paper cites
/// (Sec. 5.3, after [15, 9]) — without QOS support, locally-fair
/// round-robin arbitration gives sources near the hotspot a
/// disproportionate share while distant nodes starve. PVC restores
/// equality.
///
/// Options: fast=1
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

using namespace taqos;

namespace {

void
runMode(TopologyKind kind, QosMode mode, Cycle cycles, TextTable &t)
{
    ColumnConfig col = paperColumn(kind, mode);
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(20000, 20000 + cycles);
    sim.run(20000 + cycles);

    const SimMetrics &m = sim.metrics();
    std::vector<std::string> row{topologyName(kind), qosModeName(mode)};
    for (NodeId n = 0; n < col.numNodes; ++n) {
        std::uint64_t flits = 0;
        for (int k = 0; k < col.injectorsPerNode; ++k)
            flits += m.flowFlits[static_cast<std::size_t>(col.flowOf(n, k))];
        row.push_back(strFormat("%llu", (unsigned long long)flits));
    }
    t.addRow(row);
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Hotspot throughput per node: no-QOS starvation vs PVC",
        "Sec. 5.3 premise (after Lee et al. [15] and Grot et al. [9])");

    const Cycle cycles = opts.getBool("fast", false) ? 60000 : 200000;

    TextTable t;
    t.setHeader({"topology", "mode", "node0", "node1", "node2", "node3",
                 "node4", "node5", "node6", "node7"});
    for (auto kind : {TopologyKind::MeshX1, TopologyKind::Dps}) {
        runMode(kind, QosMode::NoQos, cycles, t);
        runMode(kind, QosMode::Pvc, cycles, t);
        t.addRule();
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: with no QOS, per-node delivered flits decay "
                "sharply with\ndistance from node 0 (locally-fair "
                "round-robin halves the share at\neach merge); PVC "
                "equalizes all nodes.\n");
    return 0;
}
