/// Sec. 5.2 (text): packet replay rates in saturation on uniform random
/// and tornado traffic. The paper reports (uniform random): mesh_x1 ~7%,
/// mesh_x2 ~5%, mesh_x4 ~0.1%, MECS ~0.04%, DPS ~2%, with fewer
/// preemptions under tornado; topologies with more channel resources are
/// more immune.
///
/// Options: fast=1, rate=0.15
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header("Preemption (replay) rates in saturation",
                      "Sec. 5.2, text (preemption discussion)");

    RunPhases phases;
    if (opts.getBool("fast", false))
        phases = RunPhases{5000, 15000, 10000};
    const double rate = opts.getDouble("rate", 0.15);

    for (auto pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Tornado}) {
        std::printf("--- %s @ %.0f%%/injector ---\n", patternName(pattern),
                    100.0 * rate);
        TextTable t;
        t.setHeader({"topology", "packets preempted", "hops replayed"});
        for (const auto &row :
             runSaturationPreemption(pattern, rate, phases)) {
            t.addRow({topologyName(row.topology),
                      benchutil::pct(100.0 * row.packetRate),
                      benchutil::pct(100.0 * row.hopRate)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
