/// Ablation A2 (ours): PVC design knobs on the DPS column under
/// Workload 1 — frame length (guarantee granularity), the reserved VC,
/// and the non-preemptable quota. Shows each mechanism's contribution to
/// fairness and preemption throttling.
///
/// Options: fast=1
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

using namespace taqos;

namespace {

struct Variant {
    const char *name;
    Cycle frameLen;
    bool reservedVc;
    bool quota;
};

void
runVariant(const Variant &v, Cycle gen, TextTable &t)
{
    ColumnConfig col = paperColumn(TopologyKind::Dps);
    col.pvc.frameLen = v.frameLen;
    col.pvc.reservedVcEnabled = v.reservedVc;
    col.pvc.quotaEnabled = v.quota;

    TrafficConfig traffic = makeWorkload1(col);
    traffic.genUntil = gen;
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(0, gen);
    const Cycle done = sim.runUntilDrained(gen * 10, gen);

    const SimMetrics &m = sim.metrics();
    RunningStat flits;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        if (traffic.flowActive(f))
            flits.push(static_cast<double>(
                m.flowFlits[static_cast<std::size_t>(f)]));
    }
    t.addRow({v.name, strFormat("%llu", (unsigned long long)v.frameLen),
              v.reservedVc ? "yes" : "no", v.quota ? "yes" : "no",
              benchutil::pct(100.0 * m.preemptionPacketRate()),
              benchutil::pct(100.0 * m.preemptionHopRate()),
              benchutil::pct(100.0 * flits.stddev() /
                             std::max(flits.mean(), 1.0)),
              done == kNoCycle ? "(did not drain)"
                               : strFormat("%llu",
                                           (unsigned long long)done)});
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header("PVC mechanism ablation (DPS column, Workload 1)",
                      "Sec. 3.1 mechanisms (ablation, not a paper figure)");

    const Cycle gen = opts.getBool("fast", false) ? 30000 : 100000;

    const Variant variants[] = {
        {"default", 50000, true, true},
        {"short frame", 10000, true, true},
        {"long frame", 200000, true, true},
        {"no reserved VC", 50000, false, true},
        {"no quota", 50000, true, false},
        {"no quota, no rsvd VC", 50000, false, false},
    };

    TextTable t;
    t.setHeader({"variant", "frame", "rsvd VC", "quota", "pkts preempted",
                 "hops replayed", "throughput stddev", "completion"});
    for (const auto &v : variants)
        runVariant(v, gen, t);
    std::printf("%s\n", t.render().c_str());
    std::printf("Expected: disabling the quota removes preemption "
                "throttling (rates rise);\nshorter frames tighten "
                "guarantees but flush history more often; the\nreserved VC "
                "gives rate-compliant traffic an escape path.\n");
    return 0;
}
