/// Figure 5: fraction of packets that experience preemption events and of
/// hop traversals wasted to replay, on the adversarial Workloads 1 and 2.
/// Each preemption of a packet counts as a separate event; MECS hop counts
/// are normalized to mesh-equivalent hops by communication distance.
///
/// Both workloads form one adversarial SweepSpec (10 cells) executed on
/// the parallel SweepRunner; json=<path> writes the combined
/// taqos-sweep/v1 record.
///
/// Options: fast=1, gencycles=<generation horizon>, threads=N,
///          json=<path>
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header("Preemption incidence on adversarial workloads",
                      "Figure 5(a) Workload 1, Figure 5(b) Workload 2 "
                      "(Sec. 5.3)");

    Cycle gen = static_cast<Cycle>(opts.getInt("gencycles", 100000));
    if (opts.getBool("fast", false))
        gen = 30000;

    // One 10-cell sweep (5 topologies x 2 workloads) so the runner's
    // pool stays fully busy across both workloads.
    const SweepResult result =
        SweepRunner(static_cast<int>(opts.getInt("threads", 0)))
            .run(adversarialSpec(0, gen));
    const std::string json = opts.get("json", "");
    if (!json.empty() && result.writeJson(json))
        std::printf("wrote %s\n", json.c_str());
    const auto rows = adversarialFromSweep(result);
    for (int w = 1; w <= 2; ++w) {
        std::printf("--- Workload %d ---\n", w);
        TextTable t;
        t.setHeader({"topology", "packets preempted", "hops replayed"});
        for (const auto &row : rows) {
            if (row.workload != w)
                continue;
            t.addRow({topologyName(row.topology),
                      benchutil::pct(row.preemptedPacketsPct),
                      benchutil::pct(row.replayedHopsPct)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf(
        "Paper expectations (W1): replicated meshes worst (>24%% hops "
        "replayed —\nflows on parallel channels thrash converging at the "
        "destination);\nmesh_x1/DPS fewest replayed hops (~9%%), MECS close "
        "(~10%%) with its hop\nfraction equal to its packet fraction (rich "
        "buffers: victims discarded\nafter fully arriving). (W2): mesh_x1 "
        "and DPS preemptions drop sharply;\nreplicated meshes stay high; "
        "MECS sees only a slight increase.\n");
    return 0;
}
