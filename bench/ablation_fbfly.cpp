/// Ablation A4 (ours): the flattened butterfly — Sec. 2.2 names it as an
/// alternative richly connected topology — as a sixth shared-region
/// candidate, compared against MECS and DPS on cost, latency, throughput
/// and fairness.
///
/// Options: fast=1
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "power/tech.h"
#include "sim/column_sim.h"
#include "topo/geometry.h"
#include "traffic/workloads.h"

using namespace taqos;

namespace {

const TopologyKind kCandidates[] = {TopologyKind::Mecs, TopologyKind::Dps,
                                    TopologyKind::FlatButterfly};

void
costTable()
{
    TextTable t("Router cost");
    t.setHeader({"topology", "area (mm^2)", "buffers", "xbar",
                 "xbar ports", "src energy (pJ/flit)"});
    for (auto kind : kCandidates) {
        ColumnConfig col = paperColumn(kind);
        const RouterGeometry geom = representativeGeometry(kind, col);
        const AreaBreakdown area = computeRouterArea(geom, tech32nm());
        const RouterEnergyProfile e = computeRouterEnergy(geom, tech32nm());
        t.addRow({topologyName(kind), benchutil::num(area.totalMm2(), 4),
                  benchutil::num(area.buffersMm2(), 4),
                  benchutil::num(area.xbarMm2, 4),
                  strFormat("%dx%d", geom.xbarInputs, geom.xbarOutputs),
                  benchutil::num(e.bufferWritePj + e.bufferReadPj +
                                 e.xbarPj + e.flowQueryPj + e.flowUpdatePj)});
    }
    std::printf("%s\n", t.render().c_str());
}

void
performanceTable(Cycle measure)
{
    TextTable t("Performance (PVC QOS)");
    t.setHeader({"topology", "UR lat @4%", "tornado lat @4%",
                 "tornado thpt @12%", "hotspot stddev"});
    for (auto kind : kCandidates) {
        std::vector<std::string> row{topologyName(kind)};
        for (auto [pattern, rate, wantLat] :
             {std::tuple{TrafficPattern::UniformRandom, 0.04, true},
              std::tuple{TrafficPattern::Tornado, 0.04, true},
              std::tuple{TrafficPattern::Tornado, 0.12, false}}) {
            ColumnConfig col = paperColumn(kind);
            TrafficConfig traffic;
            traffic.pattern = pattern;
            traffic.injectionRate = rate;
            ColumnSim sim(col, traffic);
            sim.setMeasureWindow(measure / 5, measure / 5 + measure);
            sim.run(measure / 5 + measure);
            row.push_back(wantLat
                              ? benchutil::num(sim.metrics().latency.mean(), 1)
                              : strFormat("%.2f%%",
                                          100.0 *
                                              sim.metrics()
                                                  .throughputFlitsPerCycle(
                                                      measure) /
                                              64.0));
        }
        {
            ColumnConfig col = paperColumn(kind);
            const TrafficConfig traffic = makeHotspotAll(col, 0.05);
            ColumnSim sim(col, traffic);
            sim.setMeasureWindow(measure / 5, measure / 5 + measure);
            sim.run(measure / 5 + measure);
            RunningStat rs;
            for (auto f : sim.metrics().flowFlits)
                rs.push(static_cast<double>(f));
            row.push_back(strFormat("%.2f%%",
                                    100.0 * rs.stddev() / rs.mean()));
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Flattened butterfly as a shared-region alternative",
        "Sec. 2.2 remark (ablation, not a paper figure)");
    const Cycle measure = opts.getBool("fast", false) ? 15000 : 50000;
    costTable();
    performanceTable(measure);
    std::printf(
        "Expected: fbfly matches MECS's single-hop latency with simpler\n"
        "per-channel arbitration but pays a much larger crossbar (one "
        "switch\nport per channel) — the complexity MECS's shared-port "
        "asymmetric router\nand DPS's muxes are designed to avoid.\n");
    return 0;
}
