/// Ablation A5 (ours): where and how many shared columns? The paper
/// places one column mid-chip; this ablation quantifies the trade-off the
/// choice embodies — average memory-access distance (row hop into the
/// column) versus the silicon spent on QOS-protected routers.
#include <cstdio>

#include "bench_util.h"
#include "chip/chip_cost.h"
#include "chip/routing.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"

using namespace taqos;

namespace {

/// Average MECS latency of a memory access (node -> nearest shared-column
/// MC in a uniformly random row), over all compute nodes.
double
avgMemoryLatency(const ChipConfig &chip, int packetFlits)
{
    const MecsRouter router(chip);
    RunningStat lat;
    for (int i = 0; i < chip.numNodes(); ++i) {
        const NodeCoord node = chip.coordOf(i);
        if (chip.isSharedNode(node))
            continue;
        for (int row = 0; row < chip.nodesY(); ++row) {
            const Route r = router.routeToSharedColumn(node, row);
            lat.push(router.latencyCycles(r, packetFlits));
        }
    }
    return lat.mean();
}

} // namespace

int
main()
{
    benchutil::header("Shared-column placement and count",
                      "Sec. 2.2 design choice (ablation, not a paper "
                      "figure)");

    struct Layout {
        const char *name;
        std::vector<int> columns;
    };
    const Layout layouts[] = {
        {"edge column (x=0)", {0}},
        {"mid column (x=4, the paper's)", {4}},
        {"two columns (x=2,6)", {2, 6}},
        {"four columns (x=1,3,5,7)", {1, 3, 5, 7}},
    };

    TextTable t;
    t.setHeader({"layout", "compute nodes", "avg mem latency (4-flit)",
                 "topology-aware area (mm^2)", "savings vs QOS-everywhere"});
    for (const auto &layout : layouts) {
        ChipConfig chip;
        chip.sharedColumns = layout.columns;
        const ChipCostReport cost =
            chipCostComparison(chip, TopologyKind::Dps);
        t.addRow({layout.name, strFormat("%d", chip.computeNodes()),
                  benchutil::num(avgMemoryLatency(chip, 4), 1),
                  benchutil::num(cost.topologyAwareMm2, 3),
                  benchutil::pct(cost.savingsPct())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "A mid-chip column halves the worst-case row distance of an edge\n"
        "placement; extra columns cut memory latency further but give up\n"
        "compute nodes and QOS-free router savings. The paper's single\n"
        "mid-chip column is the balance point for one MC column per 8\n"
        "rows.\n");
    return 0;
}
