/// Table 2: relative per-flow throughput under the hotspot workload — all
/// 64 injectors stream to the node-0 terminal; PVC must hand every flow an
/// equal share of the single ejection link.
///
/// The figure is one SweepSpec (hotspot scenario over the five
/// topologies) on the parallel SweepRunner; json=<path> writes the
/// taqos-sweep/v1 record.
///
/// Options: fast=1 (shorter run), cycles=<measure window>, threads=N,
///          mode=pvc|per-flow|no-qos|gsf|age|wrr (default pvc),
///          json=<path>
#include <cstdio>

#include "bench_util.h"
#include "common/options.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Relative throughput of flows on the hotspot workload (flits)",
        "Table 2 (Sec. 5.3)");

    Cycle measure = static_cast<Cycle>(opts.getInt("cycles", 280000));
    if (opts.getBool("fast", false))
        measure = 60000;
    if (measure == 0)
        optionError("bad cycles '0': want a positive measure window");

    const QosMode mode = enumOption(opts, "mode", QosMode::Pvc,
                                    parseQosMode, "mode",
                                    joinNames(kAllQosModes, qosModeName));
    const SweepResult result =
        SweepRunner(static_cast<int>(opts.getInt("threads", 0)))
            .run(table2Spec(measure, 20000, mode));
    const std::string json = opts.get("json", "");
    if (!json.empty() && result.writeJson(json))
        std::printf("wrote %s\n", json.c_str());

    TextTable t;
    t.setHeader({"topology", "mean", "min (% of mean)", "max (% of mean)",
                 "std dev (% of mean)", "preemptions"});
    for (const auto &row : fairnessFromSweep(result)) {
        t.addRow({topologyName(row.topology),
                  benchutil::num(row.meanFlits, 1),
                  strFormat("%.0f (%.1f%%)", row.minFlits, row.minPct()),
                  strFormat("%.0f (%.1f%%)", row.maxFlits, row.maxPct()),
                  strFormat("%.1f (%.2f%%)", row.stddevFlits,
                            row.stddevPct()),
                  strFormat("%llu",
                            static_cast<unsigned long long>(
                                row.preemptions))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Paper expectations: all topologies fair (max deviation <= ~2%%);\n"
        "MECS tightest (std dev ~0.1%%); preemption rate very low — the\n"
        "reserved quota covers virtually all packets when every source\n"
        "transmits at its provisioned share.\n\nCSV:\n%s",
        t.renderCsv().c_str());
    return 0;
}
