/// \file bench_util.h
/// Shared formatting for the benchmark/report binaries.
#pragma once

#include <cstdio>
#include <string>

#include "common/strings.h"

namespace taqos::benchutil {

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("================================================================\n\n");
}

inline std::string
pct(double v)
{
    return strFormat("%.2f%%", v);
}

inline std::string
num(double v, int prec = 2)
{
    return strFormat("%.*f", prec, v);
}

} // namespace taqos::benchutil
