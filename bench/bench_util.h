/// \file bench_util.h
/// Shared formatting and option parsing for the benchmark/report binaries.
#pragma once

#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/strings.h"
#include "qos/pvc.h"

namespace taqos::benchutil {

/// Parse a QOS-mode option (`key=<mode>`) through the canonical
/// parseQosMode round-trip; exits with the list of valid names on an
/// unknown value. Forwarding shim — new drivers should call
/// enumOption (common/options.h) directly.
inline QosMode
qosModeFromOpts(const OptionMap &opts, const char *key, QosMode dflt)
{
    return enumOption(opts, key, dflt, parseQosMode, "mode",
                      joinNames(kAllQosModes, qosModeName));
}

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("================================================================\n\n");
}

inline std::string
pct(double v)
{
    return strFormat("%.2f%%", v);
}

inline std::string
num(double v, int prec = 2)
{
    return strFormat("%.*f", prec, v);
}

} // namespace taqos::benchutil
