/// \file bench_util.h
/// Shared formatting and option parsing for the benchmark/report binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "qos/pvc.h"

namespace taqos::benchutil {

/// Parse a QOS-mode option (`key=<mode>`) through the canonical
/// parseQosMode round-trip; exits with the list of valid names on an
/// unknown value. Every driver shares this instead of ad-hoc string
/// comparisons.
inline QosMode
qosModeFromOpts(const OptionMap &opts, const char *key, QosMode dflt)
{
    const std::string s = opts.get(key, "");
    if (s.empty())
        return dflt;
    const auto mode = parseQosMode(s);
    if (!mode.has_value()) {
        std::fprintf(stderr, "unknown QOS mode '%s'; valid:", s.c_str());
        for (QosMode m : kAllQosModes)
            std::fprintf(stderr, " %s", qosModeName(m));
        std::fprintf(stderr, "\n");
        std::exit(1);
    }
    return *mode;
}

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("================================================================\n\n");
}

inline std::string
pct(double v)
{
    return strFormat("%.2f%%", v);
}

inline std::string
num(double v, int prec = 2)
{
    return strFormat("%.*f", prec, v);
}

} // namespace taqos::benchutil
