/// Figure 3: router area overhead of the shared-region topologies, split
/// into input buffers, crossbar, and PVC flow state. The row-input buffer
/// capacity (identical across topologies) is the paper's dotted line.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main()
{
    benchutil::header("Router area overhead (mm^2, 32 nm)",
                      "Figure 3 (Sec. 5.1)");

    TextTable t;
    t.setHeader({"topology", "row buffers", "col buffers", "crossbar",
                 "flow state", "total"});
    for (const auto &row : runFig3Area()) {
        t.addRow({topologyName(row.topology),
                  benchutil::num(row.area.rowBuffersMm2, 4),
                  benchutil::num(row.area.columnBuffersMm2, 4),
                  benchutil::num(row.area.xbarMm2, 4),
                  benchutil::num(row.area.flowStateMm2, 4),
                  benchutil::num(row.area.totalMm2(), 4)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Paper expectations: mesh_x1 smallest; mesh_x4 largest "
                "(crossbar-dominated,\n~4x the baseline switch); MECS "
                "buffer-dominated; DPS comparable to MECS with a\nlarger "
                "crossbar; mesh_x2 similar footprint to MECS/DPS at half "
                "the bisection\nbandwidth; flow state insignificant "
                "everywhere.\n\nCSV:\n%s", t.renderCsv().c_str());
    return 0;
}
