/// Figure 6: cost of preemptions — completion-time slowdown relative to a
/// preemption-free per-flow-queueing network on identical traffic, and the
/// per-source deviation from the max-min-fair expected throughput.
///
/// Both workloads form one adversarial SweepSpec (10 cells) executed on
/// the parallel SweepRunner; json=<path> writes the combined
/// taqos-sweep/v1 record.
///
/// Options: fast=1, gencycles=<generation horizon>, threads=N,
///          json=<path>
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Preemption impact: slowdown and deviation from max-min fairness",
        "Figure 6(a) Workload 1, Figure 6(b) Workload 2 (Sec. 5.3)");

    Cycle gen = static_cast<Cycle>(opts.getInt("gencycles", 100000));
    if (opts.getBool("fast", false))
        gen = 30000;

    // One 10-cell sweep (5 topologies x 2 workloads) so the runner's
    // pool stays fully busy across both workloads.
    const SweepResult result =
        SweepRunner(static_cast<int>(opts.getInt("threads", 0)))
            .run(adversarialSpec(0, gen));
    const std::string json = opts.get("json", "");
    if (!json.empty() && result.writeJson(json))
        std::printf("wrote %s\n", json.c_str());
    const auto rows = adversarialFromSweep(result);
    for (int w = 1; w <= 2; ++w) {
        std::printf("--- Workload %d ---\n", w);
        TextTable t;
        t.setHeader({"topology", "slowdown", "avg deviation",
                     "deviation range"});
        for (const auto &row : rows) {
            if (row.workload != w)
                continue;
            t.addRow({topologyName(row.topology),
                      benchutil::pct(row.slowdownPct),
                      benchutil::pct(row.avgDeviationPct),
                      strFormat("[%+.2f%%, %+.2f%%]", row.minDeviationPct,
                                row.maxDeviationPct)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf(
        "Paper expectations: slowdown under ~5%% everywhere — preemptions\n"
        "barely affect completion time; average deviation from the max-min\n"
        "expectation under ~1%%; DPS shows the tightest per-source "
        "deviation\nrange on Workload 1.\n");
    return 0;
}
