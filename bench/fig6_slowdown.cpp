/// Figure 6: cost of preemptions — completion-time slowdown relative to a
/// preemption-free per-flow-queueing network on identical traffic, and the
/// per-source deviation from the max-min-fair expected throughput.
///
/// Options: fast=1, gencycles=<generation horizon>
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    benchutil::header(
        "Preemption impact: slowdown and deviation from max-min fairness",
        "Figure 6(a) Workload 1, Figure 6(b) Workload 2 (Sec. 5.3)");

    Cycle gen = static_cast<Cycle>(opts.getInt("gencycles", 100000));
    if (opts.getBool("fast", false))
        gen = 30000;

    for (int w = 1; w <= 2; ++w) {
        std::printf("--- Workload %d ---\n", w);
        TextTable t;
        t.setHeader({"topology", "slowdown", "avg deviation",
                     "deviation range"});
        for (const auto &row : runAdversarial(w, gen)) {
            t.addRow({topologyName(row.topology),
                      benchutil::pct(row.slowdownPct),
                      benchutil::pct(row.avgDeviationPct),
                      strFormat("[%+.2f%%, %+.2f%%]", row.minDeviationPct,
                                row.maxDeviationPct)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf(
        "Paper expectations: slowdown under ~5%% everywhere — preemptions\n"
        "barely affect completion time; average deviation from the max-min\n"
        "expectation under ~1%%; DPS shows the tightest per-source "
        "deviation\nrange on Workload 1.\n");
    return 0;
}
