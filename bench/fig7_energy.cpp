/// Figure 7: router energy per flit by hop type (source / intermediate /
/// destination) and for a 3-hop route, split into buffers, crossbar and
/// flow-state components.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/experiments.h"

using namespace taqos;

namespace {

void
addRows(TextTable &t, const EnergyRow &row)
{
    const auto line = [&](const char *hop, const double c[3]) {
        t.addRow({topologyName(row.topology), hop, benchutil::num(c[0]),
                  benchutil::num(c[1]), benchutil::num(c[2]),
                  benchutil::num(EnergyRow::total(c))});
    };
    line("src", row.srcPj);
    line("intermediate", row.intPj);
    line("dest", row.dstPj);
    line("3 hops", row.threeHopPj);
}

} // namespace

int
main()
{
    benchutil::header("Router energy per flit (pJ, 32 nm, 0.9 V)",
                      "Figure 7 (Sec. 5.4)");

    TextTable t;
    t.setHeader({"topology", "hop", "buffers", "xbar", "flow table",
                 "total"});
    const auto rows = runFig7Energy();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        addRows(t, rows[i]);
        if (i + 1 < rows.size())
            t.addRule();
    }
    std::printf("%s\n", t.render().c_str());

    // The paper's headline ratios.
    const auto find = [&](TopologyKind k) -> const EnergyRow & {
        for (const auto &r : rows)
            if (r.topology == k)
                return r;
        return rows.front();
    };
    const double dps = EnergyRow::total(find(TopologyKind::Dps).threeHopPj);
    const double m1 = EnergyRow::total(find(TopologyKind::MeshX1).threeHopPj);
    const double m4 = EnergyRow::total(find(TopologyKind::MeshX4).threeHopPj);
    const double mecs = EnergyRow::total(find(TopologyKind::Mecs).threeHopPj);
    std::printf("3-hop savings of DPS vs mesh_x1: %.1f%% (paper: ~17%%)\n",
                100.0 * (1.0 - dps / m1));
    std::printf("3-hop savings of DPS vs mesh_x4: %.1f%% (paper: ~33%%)\n",
                100.0 * (1.0 - dps / m4));
    std::printf("MECS / DPS 3-hop ratio: %.2f (paper: ~1.0)\n\nCSV:\n%s",
                mecs / dps, t.renderCsv().c_str());
    return 0;
}
