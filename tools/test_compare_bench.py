#!/usr/bin/env python3
"""Unit tests for the perf gate (tools/compare_bench.py): snapshot
merging, tolerance edges, missing-row handling, and the --min-speedup
pair mode. Run directly (python3 tools/test_compare_bench.py) or via
ctest (compare_bench_py)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402


def snapshot(rows):
    return {"benchmark": "test",
            "results": [{"name": n, "simCyclesPerSec": v}
                        for n, v in rows.items()]}


class TempSnapshots:
    """Write snapshot dicts to temp files; returns their paths."""

    def __init__(self):
        self.dir = tempfile.TemporaryDirectory()
        self.count = 0

    def write(self, rows):
        self.count += 1
        path = os.path.join(self.dir.name, f"snap{self.count}.json")
        with open(path, "w") as f:
            json.dump(snapshot(rows), f)
        return path


class LoadResultsTest(unittest.TestCase):
    def setUp(self):
        self.snaps = TempSnapshots()

    def test_single_file(self):
        path = self.snaps.write({"a": 100.0, "b": 200.0})
        merged = compare_bench.load_results(path)
        self.assertEqual(sorted(merged), ["a", "b"])
        self.assertEqual(merged["a"]["simCyclesPerSec"], 100.0)

    def test_comma_separated_files_merge(self):
        p1 = self.snaps.write({"a": 100.0, "b": 200.0})
        p2 = self.snaps.write({"c": 300.0})
        merged = compare_bench.load_results(f"{p1},{p2}")
        self.assertEqual(sorted(merged), ["a", "b", "c"])

    def test_later_file_overrides_earlier(self):
        p1 = self.snaps.write({"a": 100.0})
        p2 = self.snaps.write({"a": 999.0})
        merged = compare_bench.load_results(f"{p1},{p2}")
        self.assertEqual(merged["a"]["simCyclesPerSec"], 999.0)


class RegressionGateTest(unittest.TestCase):
    def setUp(self):
        self.snaps = TempSnapshots()

    def run_main(self, current, baseline, tol=None):
        argv = ["compare_bench.py", current, baseline]
        if tol is not None:
            argv.append(str(tol))
        return compare_bench.main(argv)

    def test_passes_when_equal(self):
        cur = self.snaps.write({"a": 100.0})
        base = self.snaps.write({"a": 100.0})
        self.assertEqual(self.run_main(cur, base), 0)

    def test_tolerance_edge_exactly_at_floor_passes(self):
        # current == baseline / tolerance is still ok (>= comparison).
        cur = self.snaps.write({"a": 50.0})
        base = self.snaps.write({"a": 100.0})
        self.assertEqual(self.run_main(cur, base, 2.0), 0)

    def test_just_below_floor_fails(self):
        cur = self.snaps.write({"a": 49.9})
        base = self.snaps.write({"a": 100.0})
        self.assertEqual(self.run_main(cur, base, 2.0), 1)

    def test_missing_baseline_row_fails(self):
        cur = self.snaps.write({"b": 100.0})
        base = self.snaps.write({"a": 100.0})
        self.assertEqual(self.run_main(cur, base), 1)

    def test_new_current_row_is_not_gated(self):
        cur = self.snaps.write({"a": 100.0, "new_bench": 1.0})
        base = self.snaps.write({"a": 100.0})
        self.assertEqual(self.run_main(cur, base), 0)

    def test_merged_snapshots_cover_the_baseline(self):
        p1 = self.snaps.write({"a": 100.0})
        p2 = self.snaps.write({"b": 200.0})
        base = self.snaps.write({"a": 100.0, "b": 200.0})
        self.assertEqual(self.run_main(f"{p1},{p2}", base), 0)

    def test_usage_error(self):
        self.assertEqual(compare_bench.main(["compare_bench.py"]), 2)


class MinSpeedupTest(unittest.TestCase):
    def setUp(self):
        self.snaps = TempSnapshots()

    def run_main(self, ratio, pairs, current):
        return compare_bench.main(
            ["compare_bench.py", "--min-speedup", str(ratio), pairs,
             current])

    def test_passing_pair(self):
        cur = self.snaps.write({"fast": 300.0, "slow": 100.0})
        self.assertEqual(self.run_main(1.5, "fast/slow", cur), 0)

    def test_exactly_at_floor_passes(self):
        cur = self.snaps.write({"fast": 150.0, "slow": 100.0})
        self.assertEqual(self.run_main(1.5, "fast/slow", cur), 0)

    def test_below_floor_fails(self):
        cur = self.snaps.write({"fast": 149.0, "slow": 100.0})
        self.assertEqual(self.run_main(1.5, "fast/slow", cur), 1)

    def test_multiple_pairs_all_must_pass(self):
        cur = self.snaps.write({"f1": 200.0, "s1": 100.0,
                                "f2": 100.0, "s2": 100.0})
        self.assertEqual(self.run_main(1.5, "f1/s1,f2/s2", cur), 1)
        self.assertEqual(self.run_main(1.5, "f1/s1", cur), 0)

    def test_missing_row_fails(self):
        cur = self.snaps.write({"fast": 300.0})
        self.assertEqual(self.run_main(1.5, "fast/slow", cur), 1)

    def test_zeroed_rates_fail_rather_than_vacuously_pass(self):
        cur = self.snaps.write({"fast": 0.0, "slow": 0.0})
        self.assertEqual(self.run_main(1.5, "fast/slow", cur), 1)

    def test_bad_pair_spec_is_a_usage_error(self):
        cur = self.snaps.write({"fast": 300.0, "slow": 100.0})
        self.assertEqual(self.run_main(1.5, "fastslow", cur), 2)

    def test_merged_snapshots(self):
        p1 = self.snaps.write({"fast": 300.0})
        p2 = self.snaps.write({"slow": 100.0})
        self.assertEqual(self.run_main(2.0, "fast/slow", f"{p1},{p2}"), 0)


if __name__ == "__main__":
    unittest.main()
