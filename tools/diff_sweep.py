#!/usr/bin/env python3
"""Compare the grid-point aggregates of two taqos-sweep/v1 records.

Usage:
    tools/diff_sweep.py CURRENT.json REFERENCE.json [--rtol R] [--atol A]

Both files are sweep records written by SweepResult::writeJson (the
nightly workflow's full-figure runs) or compact references produced with
--emit-ref. Every grid point of the REFERENCE must exist in CURRENT, and
each metric's mean must match within

    |current - reference| <= atol + rtol * |reference|

(default rtol 0.02, atol 1e-9: the simulator is deterministic, so only
cross-compiler floating-point drift is tolerated; a real behavioural
change moves means far beyond 2%). Grid points or metrics only in
CURRENT are reported but do not fail. Exit 1 on any out-of-tolerance
metric or missing grid point.

    tools/diff_sweep.py --emit-ref SWEEP.json REF_OUT.json

extracts just the grid-point means from a full record into a compact
checked-in reference (bench/nightly_ref/*.json).
"""

import json
import sys

KEY_FIELDS = ("topology", "pattern", "mode", "rate", "workload",
              "placement")


def grid_key(agg):
    return tuple(agg[k] for k in KEY_FIELDS)


def load_aggregates(path):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for agg in doc.get("aggregates", []):
        means = {}
        for name, stats in agg.get("metrics", {}).items():
            means[name] = stats["mean"] if isinstance(stats, dict) \
                else stats
        points[grid_key(agg)] = means
    return doc, points


def emit_ref(sweep_path, out_path):
    doc, points = load_aggregates(sweep_path)
    ref = {
        "schema": "taqos-sweep-ref/v1",
        "name": doc.get("name", ""),
        "scenario": doc.get("scenario", ""),
        "aggregates": [
            dict(zip(KEY_FIELDS, key)) | {"metrics": means}
            for key, means in sorted(points.items(),
                                     key=lambda kv: repr(kv[0]))
        ],
    }
    with open(out_path, "w") as f:
        json.dump(ref, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} ({len(points)} grid points)")
    return 0


def fmt_key(key):
    return "/".join(str(v) for v in key)


def main(argv):
    args = argv[1:]
    if args and args[0] == "--emit-ref":
        if len(args) != 3:
            sys.stderr.write(__doc__)
            return 2
        return emit_ref(args[1], args[2])

    rtol, atol = 0.02, 1e-9
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--rtol":
            rtol = float(args[i + 1])
            i += 2
        elif args[i] == "--atol":
            atol = float(args[i + 1])
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 2:
        sys.stderr.write(__doc__)
        return 2

    _, current = load_aggregates(positional[0])
    _, reference = load_aggregates(positional[1])

    failures = []
    checked = 0
    for key, ref_metrics in sorted(reference.items(),
                                   key=lambda kv: repr(kv[0])):
        if key not in current:
            failures.append(f"{fmt_key(key)}: grid point missing")
            continue
        cur_metrics = current[key]
        for name, ref_v in sorted(ref_metrics.items()):
            if name not in cur_metrics:
                failures.append(f"{fmt_key(key)}.{name}: metric missing")
                continue
            cur_v = cur_metrics[name]
            checked += 1
            if abs(cur_v - ref_v) > atol + rtol * abs(ref_v):
                failures.append(
                    f"{fmt_key(key)}.{name}: {cur_v:.6g} vs reference "
                    f"{ref_v:.6g} (rtol {rtol:g})")

    extra = sorted(set(current) - set(reference))
    if extra:
        print(f"{len(extra)} grid points only in current (not checked)")

    if failures:
        print(f"sweep diff FAILED ({len(failures)} of {checked} checks):")
        for f in failures[:40]:
            print(f"  - {f}")
        if len(failures) > 40:
            print(f"  ... and {len(failures) - 40} more")
        return 1
    print(f"sweep diff passed: {checked} metric means within "
          f"rtol {rtol:g} across {len(reference)} grid points.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
