#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json snapshots against the
committed bench/baseline.json.

Usage:
    tools/compare_bench.py CURRENT[,CURRENT2,...] BASELINE [TOLERANCE]

CURRENT is a comma-separated list of snapshot files the bench binaries
just wrote (BENCH_micro.json from micro_bench, BENCH_qos_policy.json from
ablation_qos_policy); their result lists are merged. BASELINE is the
committed reference (same schema); TOLERANCE (default 2.0) is the allowed
slowdown factor - the gate fails when

    current.simCyclesPerSec < baseline.simCyclesPerSec / TOLERANCE

for any benchmark named in the baseline. Benchmarks present only in the
current snapshot are reported but never fail the gate (new benchmarks get
a baseline entry on the next refresh). Exit code 1 on regression or on a
baseline entry missing from the current snapshot.
"""

import json
import sys


def load_results(path):
    merged = {}
    for part in path.split(","):
        with open(part) as f:
            doc = json.load(f)
        merged.update({row["name"]: row for row in doc.get("results", [])})
    return merged


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    current = load_results(argv[1])
    baseline = load_results(argv[2])
    tolerance = float(argv[3]) if len(argv) > 3 else 2.0

    failures = []
    width = max(len(n) for n in baseline) if baseline else 10
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>6}  verdict")
    for name, base in sorted(baseline.items()):
        ref = base["simCyclesPerSec"]
        if name not in current:
            print(f"{name:<{width}}  {ref:>12.0f}  {'MISSING':>12}  "
                  f"{'-':>6}  FAIL")
            failures.append(f"{name}: missing from current snapshot")
            continue
        cur = current[name]["simCyclesPerSec"]
        ratio = cur / ref if ref > 0 else float("inf")
        ok = cur >= ref / tolerance
        print(f"{name:<{width}}  {ref:>12.0f}  {cur:>12.0f}  "
              f"{ratio:>6.2f}  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {cur:.0f} cycles/s < {ref:.0f} / {tolerance:g}")

    for name in sorted(set(current) - set(baseline)):
        cur = current[name]["simCyclesPerSec"]
        print(f"{name:<{width}}  {'(new)':>12}  {cur:>12.0f}  "
              f"{'-':>6}  ok (not gated)")

    if failures:
        print("\nperf regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("If the slowdown is intentional, refresh bench/baseline.json "
              "(see README 'Performance gate').")
        return 1
    print(f"\nperf gate passed ({len(baseline)} benchmarks, "
          f"tolerance {tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
