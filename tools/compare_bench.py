#!/usr/bin/env python3
"""Perf gate: compare fresh BENCH_*.json snapshots against the committed
bench/baseline.json, and/or enforce minimum speedup ratios between named
benchmark pairs inside the snapshots.

Usage:
    tools/compare_bench.py CURRENT[,CURRENT2,...] BASELINE [TOLERANCE]
    tools/compare_bench.py --min-speedup R FAST/SLOW[,FAST2/SLOW2,...] \
        CURRENT[,CURRENT2,...]

Regression mode (positional): CURRENT is a comma-separated list of
snapshot files the bench binaries just wrote (BENCH_micro.json,
BENCH_qos_policy.json, BENCH_hotpath.json); their result lists are
merged, later files overriding earlier ones. BASELINE is the committed
reference (same schema); TOLERANCE (default 2.0) is the allowed slowdown
factor - the gate fails when

    current.simCyclesPerSec < baseline.simCyclesPerSec / TOLERANCE

for any benchmark named in the baseline. Benchmarks present only in the
current snapshot are reported but never fail the gate (new benchmarks get
a baseline entry on the next refresh). Exit code 1 on regression or on a
baseline entry missing from the current snapshot.

Speedup mode (--min-speedup): each FAST/SLOW pair names two rows of the
merged CURRENT snapshots; the gate fails when

    fast.simCyclesPerSec < R * slow.simCyclesPerSec

for any pair, or when either row is missing. This is how CI pins the
activity-driven core's advantage over the always-tick reference engine
(bench/ablation_hotpath writes both sides into BENCH_hotpath.json).
"""

import json
import sys


def load_results(path):
    merged = {}
    for part in path.split(","):
        with open(part) as f:
            doc = json.load(f)
        merged.update({row["name"]: row for row in doc.get("results", [])})
    return merged


def check_regression(current, baseline, tolerance):
    failures = []
    width = max(len(n) for n in baseline) if baseline else 10
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>6}  verdict")
    for name, base in sorted(baseline.items()):
        ref = base["simCyclesPerSec"]
        if name not in current:
            print(f"{name:<{width}}  {ref:>12.0f}  {'MISSING':>12}  "
                  f"{'-':>6}  FAIL")
            failures.append(f"{name}: missing from current snapshot")
            continue
        cur = current[name]["simCyclesPerSec"]
        ratio = cur / ref if ref > 0 else float("inf")
        ok = cur >= ref / tolerance
        print(f"{name:<{width}}  {ref:>12.0f}  {cur:>12.0f}  "
              f"{ratio:>6.2f}  {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{name}: {cur:.0f} cycles/s < {ref:.0f} / {tolerance:g}")

    for name in sorted(set(current) - set(baseline)):
        cur = current[name]["simCyclesPerSec"]
        print(f"{name:<{width}}  {'(new)':>12}  {cur:>12.0f}  "
              f"{'-':>6}  ok (not gated)")
    return failures


def check_speedups(current, pairs, ratio):
    failures = []
    print(f"{'pair':<48}  {'speedup':>8}  {'min':>5}  verdict")
    for fast, slow in pairs:
        label = f"{fast}/{slow}"
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            print(f"{label:<48}  {'MISSING':>8}  {ratio:>5.2f}  FAIL")
            failures.append(f"{label}: missing row(s) {', '.join(missing)}")
            continue
        slow_rate = current[slow]["simCyclesPerSec"]
        fast_rate = current[fast]["simCyclesPerSec"]
        if slow_rate <= 0 or fast_rate <= 0:
            # A zeroed rate means the benchmark measured nothing (broken
            # accumulation, truncated snapshot) — never a pass.
            print(f"{label:<48}  {'ZERO':>8}  {ratio:>5.2f}  FAIL")
            failures.append(
                f"{label}: non-positive rate(s) fast={fast_rate:g} "
                f"slow={slow_rate:g}")
            continue
        got = fast_rate / slow_rate
        ok = fast_rate >= ratio * slow_rate
        print(f"{label:<48}  {got:>7.2f}x  {ratio:>5.2f}  "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{label}: {got:.2f}x speedup below the {ratio:g}x floor")
    return failures


def parse_pairs(spec):
    pairs = []
    for part in spec.split(","):
        fast, sep, slow = part.partition("/")
        if not sep or not fast or not slow:
            raise ValueError(f"bad pair '{part}': want FAST/SLOW")
        pairs.append((fast, slow))
    return pairs


def main(argv):
    args = argv[1:]
    if args and args[0] == "--min-speedup":
        if len(args) != 4:
            sys.stderr.write(__doc__)
            return 2
        ratio = float(args[1])
        try:
            pairs = parse_pairs(args[2])
        except ValueError as err:
            sys.stderr.write(f"{err}\n")
            return 2
        current = load_results(args[3])
        failures = check_speedups(current, pairs, ratio)
        if failures:
            print("\nperf gate FAILED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"\nspeedup gate passed ({len(pairs)} pairs, "
              f"floor {ratio:g}x).")
        return 0

    if len(args) < 2 or len(args) > 3:
        sys.stderr.write(__doc__)
        return 2
    current = load_results(args[0])
    baseline = load_results(args[1])
    tolerance = float(args[2]) if len(args) > 2 else 2.0
    failures = check_regression(current, baseline, tolerance)
    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("If the slowdown is intentional, refresh bench/baseline.json "
              "(see README 'Performance gate').")
        return 1
    print(f"\nperf gate passed ({len(baseline)} benchmarks, "
          f"tolerance {tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
